#pragma once

/// \file simulator.hpp
/// Discrete-event simulation core. A Simulator owns a priority queue of
/// timestamped callbacks and a monotonically advancing clock. Everything in
/// the hardware model (GPU streams, PCIe flows, SSD channels) is driven by
/// events scheduled here; no wall-clock time is ever read.
///
/// The event path is allocation-free at steady state: callbacks are
/// move-only util::UniqueFunction with inline storage, the queue is an
/// indexed 4-ary EventHeap whose pop moves the callback out (no
/// copy-per-pop), and the per-simulator SlabPool recycles completion and
/// waiter blocks (see completion.hpp).

#include <cstdint>
#include <memory>
#include <vector>

#include "ssdtrain/sim/event_heap.hpp"
#include "ssdtrain/util/pool.hpp"
#include "ssdtrain/util/unique_function.hpp"
#include "ssdtrain/util/units.hpp"

namespace ssdtrain::sim {

/// Simulated time in seconds since simulation start.
using TimePoint = double;

/// Event/waiter callback: move-only, 64 bytes of inline storage. Small
/// closures (the entire event hot path) schedule without touching the
/// heap; oversized ones degrade to one allocation, as std::function did.
using EventFn = util::UniqueFunction<void()>;

class Simulator {
 public:
  Simulator() : pool_(util::SlabPool::create()) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules \p fn to run at absolute time \p t (must be >= now()).
  /// Events at equal times run in scheduling (FIFO) order.
  void schedule_at(TimePoint t, EventFn fn);

  /// Schedules \p fn to run \p dt seconds from now (dt >= 0).
  void schedule_after(util::Seconds dt, EventFn fn);

  /// Runs events until the queue is empty. Returns the final time.
  TimePoint run();

  /// Runs a single event if one exists. Returns false when the queue is
  /// empty.
  bool step();

  /// Runs events with timestamps <= \p t, then advances the clock to \p t.
  /// The horizon is re-checked against the live queue after every event,
  /// so events scheduled *by* events at exactly time t still run before
  /// the clock is pinned (regression-tested; a drain-then-pin
  /// implementation would drop them).
  void run_until(TimePoint t);

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Discards all pending events without running them. Used during teardown
  /// so event closures (which may own simulated resources) are destroyed
  /// while the objects they release into are still alive. Safe to call
  /// from inside a running event: the in-flight callback was moved out of
  /// the heap before being invoked.
  void drop_pending() { queue_.clear(); }

  /// Monotonic logical counter: each call returns a strictly increasing
  /// value. Used for deterministic tie-breaking and for the tensor cache's
  /// logical `get_id` timestamps (the paper uses wall-clock timestamps; a
  /// logical clock preserves uniqueness while keeping runs reproducible).
  std::uint64_t next_logical_stamp() { return ++logical_stamp_; }

  /// Slab pool backing this simulator's completions and waiter nodes.
  /// Shared (via the non-atomic intrusive handle) so those objects keep
  /// the pool alive through teardown.
  [[nodiscard]] const util::SlabPool::Handle& pool() const { return pool_; }

 private:
  EventHeap<EventFn> queue_;
  util::SlabPool::Handle pool_;
  TimePoint now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t logical_stamp_ = 0;
};

}  // namespace ssdtrain::sim
