#include "ssdtrain/sim/stream.hpp"

#include <utility>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sim {

Stream::Stream(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

CompletionPtr Stream::enqueue(std::string label, util::Seconds duration,
                              std::vector<CompletionPtr> deps) {
  util::expects(duration >= 0.0, "negative task duration");
  Task task;
  task.label = std::move(label);
  task.duration = duration;
  for (const auto& w : pending_waits_) deps.push_back(w);
  task.deps = deps.empty() ? nullptr : when_all(sim_, deps);
  task.done = std::make_shared<Completion>(sim_, name_ + ":" + task.label);
  CompletionPtr done = task.done;
  queue_.push_back(std::move(task));
  pump();
  return done;
}

CompletionPtr Stream::enqueue_dynamic(std::string label, StartFn start,
                                      std::vector<CompletionPtr> deps) {
  util::expects(static_cast<bool>(start), "null start function");
  Task task;
  task.label = std::move(label);
  task.start = std::move(start);
  for (const auto& w : pending_waits_) deps.push_back(w);
  task.deps = deps.empty() ? nullptr : when_all(sim_, deps);
  task.done = std::make_shared<Completion>(sim_, name_ + ":" + task.label);
  CompletionPtr done = task.done;
  queue_.push_back(std::move(task));
  pump();
  return done;
}

CompletionPtr Stream::record_marker(std::string label) {
  return enqueue(std::move(label), 0.0);
}

void Stream::wait_for(CompletionPtr dep) {
  util::expects(static_cast<bool>(dep), "null dependency");
  pending_waits_.push_back(std::move(dep));
}

void Stream::pump() {
  if (running_ || queue_.empty()) return;
  Task& head = queue_.front();
  if (head.deps && !head.deps->done()) {
    if (!waiting_registered_) {
      waiting_registered_ = true;
      head.deps->add_waiter([this]() {
        waiting_registered_ = false;
        pump();
      });
    }
    return;
  }
  Task task = std::move(queue_.front());
  queue_.pop_front();
  begin(std::move(task));
}

void Stream::begin(Task task) {
  running_ = true;
  const TimePoint started = sim_.now();
  const std::string label = task.label;
  const CompletionPtr done = task.done;
  if (task.start) {
    task.start([this, started, label, done]() {
      finish_task(started, label, done);
    });
  } else {
    sim_.schedule_after(task.duration, [this, started, label, done]() {
      finish_task(started, label, done);
    });
  }
}

void Stream::finish_task(TimePoint started, const std::string& label,
                         const CompletionPtr& done) {
  busy_time_ += sim_.now() - started;
  ++tasks_completed_;
  if (observer_) observer_(TaskRecord{label, started, sim_.now()});
  running_ = false;
  done->fire();
  pump();
}

}  // namespace ssdtrain::sim
