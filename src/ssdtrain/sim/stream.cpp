#include "ssdtrain/sim/stream.hpp"

#include <utility>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sim {

void Stream::FinishToken::operator()() const {
  util::expects(stream_ != nullptr, "finish token without a stream");
  stream_->finish_task(token_);
}

Stream::Stream(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)), name_label_(name_) {}

CompletionPtr Stream::combine_deps(std::vector<CompletionPtr> deps) {
  for (const auto& w : pending_waits_) deps.push_back(w);
  if (deps.empty()) return nullptr;
  std::size_t unfired = 0;
  const CompletionPtr* last_unfired = nullptr;
  for (const auto& d : deps) {
    util::expects(static_cast<bool>(d), "null dependency");
    if (!d->done()) {
      ++unfired;
      last_unfired = &d;
    }
  }
  if (unfired == 0) return nullptr;
  if (unfired == 1) return *last_unfired;
  return when_all(sim_, deps, name_label_);
}

CompletionPtr Stream::combine_deps_span(std::span<const CompletionPtr> deps) {
  if (!pending_waits_.empty()) {
    // wait_for() is off the replay hot path; fold through the vector form.
    std::vector<CompletionPtr> all(deps.begin(), deps.end());
    return combine_deps(std::move(all));
  }
  std::size_t unfired = 0;
  const CompletionPtr* last_unfired = nullptr;
  for (const auto& d : deps) {
    util::expects(static_cast<bool>(d), "null dependency");
    if (!d->done()) {
      ++unfired;
      last_unfired = &d;
    }
  }
  if (unfired == 0) return nullptr;
  if (unfired == 1) return *last_unfired;
  return when_all_span(sim_, deps, name_label_);
}

CompletionPtr Stream::enqueue_labeled(util::Label label,
                                      util::Seconds duration,
                                      std::span<const CompletionPtr> deps) {
  util::expects(duration >= 0.0, "negative task duration");
  Task task;
  task.duration = duration;
  task.deps = combine_deps_span(deps);
  task.done = Completion::create(sim_, name_label_);
  CompletionPtr done = task.done;
  // The lazy-label contract, one layer up: the interned label renders to
  // text only when someone is actually watching.
  if (observer_) labels_.emplace_back(label.str());
  queue_.push_back(std::move(task));
  pump();
  return done;
}

void Stream::enqueue_labeled_detached(util::Label label,
                                      util::Seconds duration,
                                      std::span<const CompletionPtr> deps) {
  util::expects(duration >= 0.0, "negative task duration");
  Task task;
  task.duration = duration;
  task.deps = combine_deps_span(deps);
  if (observer_) labels_.emplace_back(label.str());
  queue_.push_back(std::move(task));
  pump();
}

CompletionPtr Stream::push_task(Task task, std::string_view label) {
  task.done = Completion::create(sim_, name_label_);
  CompletionPtr done = task.done;
  if (observer_) labels_.emplace_back(label);
  queue_.push_back(std::move(task));
  pump();
  return done;
}

CompletionPtr Stream::enqueue(std::string_view label, util::Seconds duration,
                              std::vector<CompletionPtr> deps) {
  util::expects(duration >= 0.0, "negative task duration");
  Task task;
  task.duration = duration;
  task.deps = combine_deps(std::move(deps));
  return push_task(std::move(task), label);
}

CompletionPtr Stream::enqueue_after(std::string_view label,
                                    util::Seconds duration,
                                    CompletionPtr dep) {
  util::expects(duration >= 0.0, "negative task duration");
  util::expects(static_cast<bool>(dep), "null dependency");
  Task task;
  task.duration = duration;
  if (pending_waits_.empty()) {
    task.deps = dep->done() ? nullptr : std::move(dep);
  } else {
    std::vector<CompletionPtr> deps;
    deps.reserve(1 + pending_waits_.size());
    deps.push_back(std::move(dep));
    task.deps = combine_deps(std::move(deps));
  }
  return push_task(std::move(task), label);
}

CompletionPtr Stream::enqueue_dynamic(std::string_view label, StartFn start,
                                      std::vector<CompletionPtr> deps) {
  util::expects(static_cast<bool>(start), "null start function");
  Task task;
  task.start = std::move(start);
  task.deps = combine_deps(std::move(deps));
  return push_task(std::move(task), label);
}

CompletionPtr Stream::record_marker(std::string_view label) {
  return enqueue(label, 0.0);
}

void Stream::wait_for(CompletionPtr dep) {
  util::expects(static_cast<bool>(dep), "null dependency");
  pending_waits_.push_back(std::move(dep));
}

void Stream::pump() {
  if (running_ || queue_.empty()) return;
  Task& head = queue_.front();
  if (head.deps && !head.deps->done()) {
    if (!waiting_registered_) {
      waiting_registered_ = true;
      head.deps->add_waiter([this]() {
        waiting_registered_ = false;
        pump();
      });
    }
    return;
  }
  Task task = std::move(queue_.front());
  queue_.pop_front();
  if (observer_ && !labels_.empty()) {
    current_label_ = std::move(labels_.front());
    labels_.pop_front();
  }
  begin(std::move(task));
}

void Stream::begin(Task task) {
  running_ = true;
  ++run_token_;
  current_started_ = sim_.now();
  current_done_ = std::move(task.done);
  const FinishToken finish{this, run_token_};
  if (task.start) {
    task.start(finish);
  } else {
    sim_.schedule_after(task.duration, finish);
  }
}

void Stream::finish_task(std::uint64_t token) {
  util::check(running_ && token == run_token_, "stream task finished twice");
  busy_time_ += sim_.now() - current_started_;
  ++tasks_completed_;
  CompletionPtr done = std::move(current_done_);
  if (observer_) {
    observer_(TaskRecord{std::move(current_label_), current_started_,
                         sim_.now()});
  }
  // Unconditional: a label recorded while observed must not leak onto a
  // later task finishing after an observer detach/re-attach cycle.
  current_label_.clear();
  running_ = false;
  if (done) done->fire();  // null for detached tasks
  pump();
}

}  // namespace ssdtrain::sim
