#pragma once

/// \file stream.hpp
/// In-order execution queue with CUDA-stream semantics: tasks start in
/// enqueue order, each after the previous task on the stream has finished
/// and all of its explicit dependencies (completions from other streams)
/// have fired. The GPU compute queue, DMA engines, and host worker threads
/// are all modelled as streams.
///
/// The per-task path is allocation-free at steady state: completions come
/// from the simulator's slab pool, a single unfired dependency is waited
/// on directly (no when_all combiner), the finish callback is a 16-byte
/// FinishToken instead of a capturing closure, and task labels are only
/// materialised while an observer is attached — an unobserved stream
/// never copies label text.

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ssdtrain/sim/completion.hpp"
#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/util/label.hpp"
#include "ssdtrain/util/ring_deque.hpp"
#include "ssdtrain/util/unique_function.hpp"
#include "ssdtrain/util/units.hpp"

namespace ssdtrain::sim {

class Stream {
 public:
  /// Record of one executed task, delivered to the observer for tracing.
  struct TaskRecord {
    std::string label;
    TimePoint start = 0.0;
    TimePoint end = 0.0;
  };

  /// Completes the stream's currently running task when invoked. Copyable
  /// and 16 bytes, so storing or scheduling it never allocates; invoking a
  /// stale token (task already finished) is a contract violation.
  class FinishToken {
   public:
    FinishToken() = default;
    void operator()() const;

   private:
    friend class Stream;
    FinishToken(Stream* stream, std::uint64_t token)
        : stream_(stream), token_(token) {}

    Stream* stream_ = nullptr;
    std::uint64_t token_ = 0;
  };

  /// A dynamic task receives a FinishToken and must eventually invoke it
  /// (possibly at a later simulated time, e.g. when an I/O flow drains).
  /// Slim 16-byte inline budget: dynamic starts capture a pointer or two
  /// (larger closures take one heap hop), which keeps the Task footprint
  /// — and therefore the queue's memory traffic — small for the
  /// fixed-duration tasks that dominate.
  using StartFn = util::UniqueFunction<void(FinishToken), 16>;

  using Observer = util::UniqueFunction<void(const TaskRecord&)>;

  Stream(Simulator& sim, std::string name);
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues a fixed-duration task. Returns its completion.
  CompletionPtr enqueue(std::string_view label, util::Seconds duration,
                        std::vector<CompletionPtr> deps = {});

  /// Replay-path form: the label is an interned util::Label (rendered to
  /// text only while an observer is attached) and the dependencies arrive
  /// in a caller-owned scratch span — enqueuing allocates nothing.
  CompletionPtr enqueue_labeled(util::Label label, util::Seconds duration,
                                std::span<const CompletionPtr> deps = {});

  /// Fire-and-forget variant: no completion is minted for the task, so
  /// nothing can (or ever will) wait on it. Replay uses this for the many
  /// kernels whose completion the trace path also never observed.
  void enqueue_labeled_detached(util::Label label, util::Seconds duration,
                                std::span<const CompletionPtr> deps = {});

  /// Single-dependency overload: the common kernel-chain shape, kept free
  /// of the deps-vector allocation.
  CompletionPtr enqueue_after(std::string_view label, util::Seconds duration,
                              CompletionPtr dep);

  /// Enqueues a task whose duration is decided when it starts (bandwidth
  /// flows, lock waits). Returns its completion.
  CompletionPtr enqueue_dynamic(std::string_view label, StartFn start,
                                std::vector<CompletionPtr> deps = {});

  /// Zero-duration task: fires when all previously enqueued work is done
  /// (the analogue of cudaEventRecord on this stream).
  CompletionPtr record_marker(std::string_view label = "marker");

  /// Makes subsequently enqueued tasks wait for \p dep in addition to
  /// stream order (the analogue of cudaStreamWaitEvent).
  void wait_for(CompletionPtr dep);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total simulated time this stream spent executing tasks.
  [[nodiscard]] util::Seconds busy_time() const { return busy_time_; }

  /// Number of tasks executed to completion.
  [[nodiscard]] std::uint64_t tasks_completed() const {
    return tasks_completed_;
  }

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] bool idle() const { return !running_ && queue_.empty(); }

  /// Observer invoked once per finished task (for chrome-trace export).
  /// Attach before enqueuing: labels of tasks enqueued while no observer
  /// was attached are not retained (lazy-label contract), so such tasks
  /// trace with empty names.
  void set_observer(Observer observer) {
    const bool was_observed = static_cast<bool>(observer_);
    observer_ = std::move(observer);
    if (!observer_) {
      labels_.clear();
    } else if (!was_observed) {
      // Align the label queue with already-enqueued (label-less) tasks;
      // swapping observers keeps labels already recorded for queued work.
      labels_.assign(queue_.size(), std::string());
    }
  }

 private:
  struct Task {
    CompletionPtr deps;  ///< combined dependency; may be null (ready)
    util::Seconds duration = 0.0;
    StartFn start;  ///< when set, overrides `duration`
    CompletionPtr done;
  };

  /// Folds pending_waits_ into \p deps and reduces to a single completion:
  /// nullptr when everything has already fired, the dep itself when one is
  /// unfired, a when_all combiner otherwise.
  CompletionPtr combine_deps(std::vector<CompletionPtr> deps);
  CompletionPtr combine_deps_span(std::span<const CompletionPtr> deps);
  CompletionPtr push_task(Task task, std::string_view label);
  void pump();
  void begin(Task task);
  void finish_task(std::uint64_t token);

  Simulator& sim_;
  std::string name_;
  util::Label name_label_;  ///< interned once; names task completions
  /// Power-of-two ring, not std::deque: sustained enqueue/finish traffic
  /// reaches its high-water capacity once and then never mallocs (a
  /// std::deque allocates a node every few tasks under the same load).
  util::RingDeque<Task> queue_;
  /// Task labels, parallel to queue_ — populated only while an observer
  /// is attached, so unobserved streams move no strings through the queue.
  std::deque<std::string> labels_;
  std::vector<CompletionPtr> pending_waits_;
  bool running_ = false;
  bool waiting_registered_ = false;
  std::uint64_t run_token_ = 0;  ///< guards FinishToken double-invoke
  TimePoint current_started_ = 0.0;
  std::string current_label_;
  CompletionPtr current_done_;
  util::Seconds busy_time_ = 0.0;
  std::uint64_t tasks_completed_ = 0;
  Observer observer_;
};

}  // namespace ssdtrain::sim
