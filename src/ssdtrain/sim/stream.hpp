#pragma once

/// \file stream.hpp
/// In-order execution queue with CUDA-stream semantics: tasks start in
/// enqueue order, each after the previous task on the stream has finished
/// and all of its explicit dependencies (completions from other streams)
/// have fired. The GPU compute queue, DMA engines, and host worker threads
/// are all modelled as streams.

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ssdtrain/sim/completion.hpp"
#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/util/units.hpp"

namespace ssdtrain::sim {

class Stream {
 public:
  /// Record of one executed task, delivered to the observer for tracing.
  struct TaskRecord {
    std::string label;
    TimePoint start = 0.0;
    TimePoint end = 0.0;
  };

  /// A dynamic task receives a `finish` callback and must eventually invoke
  /// it (possibly at a later simulated time, e.g. when an I/O flow drains).
  using StartFn = std::function<void(std::function<void()> finish)>;

  Stream(Simulator& sim, std::string name);
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues a fixed-duration task. Returns its completion.
  CompletionPtr enqueue(std::string label, util::Seconds duration,
                        std::vector<CompletionPtr> deps = {});

  /// Enqueues a task whose duration is decided when it starts (bandwidth
  /// flows, lock waits). Returns its completion.
  CompletionPtr enqueue_dynamic(std::string label, StartFn start,
                                std::vector<CompletionPtr> deps = {});

  /// Zero-duration task: fires when all previously enqueued work is done
  /// (the analogue of cudaEventRecord on this stream).
  CompletionPtr record_marker(std::string label = "marker");

  /// Makes subsequently enqueued tasks wait for \p dep in addition to
  /// stream order (the analogue of cudaStreamWaitEvent).
  void wait_for(CompletionPtr dep);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total simulated time this stream spent executing tasks.
  [[nodiscard]] util::Seconds busy_time() const { return busy_time_; }

  /// Number of tasks executed to completion.
  [[nodiscard]] std::uint64_t tasks_completed() const {
    return tasks_completed_;
  }

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] bool idle() const { return !running_ && queue_.empty(); }

  /// Observer invoked once per finished task (for chrome-trace export).
  void set_observer(std::function<void(const TaskRecord&)> observer) {
    observer_ = std::move(observer);
  }

 private:
  struct Task {
    std::string label;
    CompletionPtr deps;  // pre-combined via when_all; may be null
    util::Seconds duration = 0.0;
    StartFn start;  // when set, overrides `duration`
    CompletionPtr done;
  };

  void pump();
  void begin(Task task);
  void finish_task(TimePoint started, const std::string& label,
                   const CompletionPtr& done);

  Simulator& sim_;
  std::string name_;
  std::deque<Task> queue_;
  std::vector<CompletionPtr> pending_waits_;
  bool running_ = false;
  bool waiting_registered_ = false;
  util::Seconds busy_time_ = 0.0;
  std::uint64_t tasks_completed_ = 0;
  std::function<void(const TaskRecord&)> observer_;
};

}  // namespace ssdtrain::sim
