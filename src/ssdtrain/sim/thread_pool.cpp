#include "ssdtrain/sim/thread_pool.hpp"

#include <utility>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sim {

SimThreadPool::SimThreadPool(Simulator& sim, std::string name,
                             std::size_t workers)
    : sim_(sim), name_(std::move(name)), workers_(workers) {
  util::expects(workers > 0, "pool needs at least one worker");
}

CompletionPtr SimThreadPool::submit(std::string label, Job job) {
  util::expects(static_cast<bool>(job), "null job");
  Pending pending;
  pending.label = std::move(label);
  pending.job = std::move(job);
  pending.done =
      std::make_shared<Completion>(sim_, name_ + ":" + pending.label);
  CompletionPtr done = pending.done;
  queue_.push_back(std::move(pending));
  try_dispatch();
  return done;
}

void SimThreadPool::try_dispatch() {
  while (running_ < workers_ && !queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    run_job(std::move(pending));
  }
}

void SimThreadPool::run_job(Pending pending) {
  ++running_;
  auto done = pending.done;
  // The job owns `finish`; guard against double invocation.
  auto finished = std::make_shared<bool>(false);
  auto finish = [this, done, finished]() {
    util::check(!*finished, "job finished twice");
    *finished = true;
    --running_;
    ++jobs_completed_;
    done->fire();
    try_dispatch();
  };
  pending.job(std::move(finish));
}

}  // namespace ssdtrain::sim
