#include "ssdtrain/sim/thread_pool.hpp"

#include <utility>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sim {

void SimThreadPool::FinishToken::operator()() const {
  util::expects(pool_ != nullptr, "finish token without a pool");
  pool_->finish_job(slot_, token_);
}

SimThreadPool::SimThreadPool(Simulator& sim, std::string name,
                             std::size_t workers)
    : sim_(sim),
      name_(std::move(name)),
      name_label_(name_),
      workers_(workers) {
  util::expects(workers > 0, "pool needs at least one worker");
}

CompletionPtr SimThreadPool::submit(util::Label label, Job job) {
  util::expects(static_cast<bool>(job), "null job");
  Pending pending;
  pending.job = std::move(job);
  pending.done =
      Completion::create(sim_, label.empty() ? name_label_ : label);
  CompletionPtr done = pending.done;
  queue_.push_back(std::move(pending));
  try_dispatch();
  return done;
}

void SimThreadPool::try_dispatch() {
  while (running_ < workers_ && !queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    run_job(std::move(pending));
  }
}

void SimThreadPool::run_job(Pending pending) {
  ++running_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  RunningSlot& rs = slots_[slot];
  rs.done = std::move(pending.done);
  rs.token = ++next_token_;
  rs.active = true;
  const FinishToken finish{this, slot, rs.token};
  // `pending.job` is moved to the stack first: the job may finish
  // synchronously and dispatch the next queued job into this frame.
  Job job = std::move(pending.job);
  job(finish);
}

void SimThreadPool::finish_job(std::uint32_t slot, std::uint64_t token) {
  util::check(slot < slots_.size() && slots_[slot].active &&
                  slots_[slot].token == token,
              "job finished twice");
  RunningSlot& rs = slots_[slot];
  CompletionPtr done = std::move(rs.done);
  rs.active = false;
  free_slots_.push_back(slot);
  --running_;
  ++jobs_completed_;
  done->fire();
  try_dispatch();
}

}  // namespace ssdtrain::sim
