#pragma once

/// \file thread_pool.hpp
/// Simulated FIFO worker pool. SSDTrain's tensor cache uses two host thread
/// pools — one for storing tensors, one for loading them — whose jobs are
/// executed in first-in-first-out order (paper §III-C2). This class gives
/// those pools the same semantics in simulated time: jobs are picked up in
/// submission order by the first free worker; each job runs until it calls
/// its FinishToken (typically when a bandwidth flow drains).
///
/// Job completions are pool-allocated, labels are lazy util::Label ids,
/// and the double-finish guard is a per-slot generation counter instead of
/// a heap-allocated flag — submitting and finishing a job allocates
/// nothing at steady state.

#include <cstdint>
#include <string>
#include <vector>

#include "ssdtrain/sim/completion.hpp"
#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/util/label.hpp"
#include "ssdtrain/util/ring_deque.hpp"
#include "ssdtrain/util/unique_function.hpp"

namespace ssdtrain::sim {

class SimThreadPool {
 public:
  /// Completes a running job when invoked. Copyable; a second invocation
  /// for the same job is a contract violation ("job finished twice").
  class FinishToken {
   public:
    FinishToken() = default;
    void operator()() const;

   private:
    friend class SimThreadPool;
    FinishToken(SimThreadPool* pool, std::uint32_t slot, std::uint64_t token)
        : pool_(pool), slot_(slot), token_(token) {}

    SimThreadPool* pool_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t token_ = 0;
  };

  /// A job receives a FinishToken and must eventually invoke it exactly
  /// once.
  using Job = util::UniqueFunction<void(FinishToken)>;

  SimThreadPool(Simulator& sim, std::string name, std::size_t workers);
  SimThreadPool(const SimThreadPool&) = delete;
  SimThreadPool& operator=(const SimThreadPool&) = delete;

  /// Submits a job; returns a completion fired when the job finishes.
  CompletionPtr submit(util::Label label, Job job);

  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::size_t running() const { return running_; }
  [[nodiscard]] bool idle() const { return running_ == 0 && queue_.empty(); }

  /// Jobs completed since construction.
  [[nodiscard]] std::uint64_t jobs_completed() const {
    return jobs_completed_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Pending {
    Job job;
    CompletionPtr done;
  };

  /// One running job's state; slots recycle through free_slots_.
  struct RunningSlot {
    CompletionPtr done;
    std::uint64_t token = 0;
    bool active = false;
  };

  void try_dispatch();
  void run_job(Pending pending);
  void finish_job(std::uint32_t slot, std::uint64_t token);

  Simulator& sim_;
  std::string name_;
  util::Label name_label_;
  std::size_t workers_;
  std::size_t running_ = 0;
  util::RingDeque<Pending> queue_;
  std::vector<RunningSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_token_ = 0;
  std::uint64_t jobs_completed_ = 0;
};

}  // namespace ssdtrain::sim
