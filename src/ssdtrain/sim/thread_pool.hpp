#pragma once

/// \file thread_pool.hpp
/// Simulated FIFO worker pool. SSDTrain's tensor cache uses two host thread
/// pools — one for storing tensors, one for loading them — whose jobs are
/// executed in first-in-first-out order (paper §III-C2). This class gives
/// those pools the same semantics in simulated time: jobs are picked up in
/// submission order by the first free worker; each job runs until it calls
/// its `finish` callback (typically when a bandwidth flow drains).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ssdtrain/sim/completion.hpp"
#include "ssdtrain/sim/simulator.hpp"

namespace ssdtrain::sim {

class SimThreadPool {
 public:
  /// A job receives a `finish` callback and must eventually invoke it
  /// exactly once.
  using Job = std::function<void(std::function<void()> finish)>;

  SimThreadPool(Simulator& sim, std::string name, std::size_t workers);
  SimThreadPool(const SimThreadPool&) = delete;
  SimThreadPool& operator=(const SimThreadPool&) = delete;

  /// Submits a job; returns a completion fired when the job finishes.
  CompletionPtr submit(std::string label, Job job);

  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::size_t running() const { return running_; }
  [[nodiscard]] bool idle() const { return running_ == 0 && queue_.empty(); }

  /// Jobs completed since construction.
  [[nodiscard]] std::uint64_t jobs_completed() const {
    return jobs_completed_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Pending {
    std::string label;
    Job job;
    CompletionPtr done;
  };

  void try_dispatch();
  void run_job(Pending pending);

  Simulator& sim_;
  std::string name_;
  std::size_t workers_;
  std::size_t running_ = 0;
  std::deque<Pending> queue_;
  std::uint64_t jobs_completed_ = 0;
};

}  // namespace ssdtrain::sim
