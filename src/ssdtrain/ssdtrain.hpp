#pragma once

/// \file ssdtrain.hpp
/// Umbrella header for the SSDTrain library. Most applications only need
/// the TrainingSession API:
///
///   #include "ssdtrain/ssdtrain.hpp"
///
///   ssdtrain::runtime::SessionConfig config;
///   config.model = ssdtrain::modules::gpt_config(12288, 3, 16);
///   config.parallel.tensor_parallel = 2;
///   config.strategy = ssdtrain::runtime::Strategy::ssdtrain;
///   ssdtrain::runtime::TrainingSession session(config);
///   auto stats = session.run_step();
///
/// Lower layers (the tensor cache, offloaders, the hardware simulation, the
/// analytic models) are all reachable through the headers below for
/// embedders who need finer control.

#include "ssdtrain/analysis/activation_model.hpp"
#include "ssdtrain/analysis/lifespan.hpp"
#include "ssdtrain/analysis/perf_model.hpp"
#include "ssdtrain/analysis/trends.hpp"
#include "ssdtrain/core/malloc_hook.hpp"
#include "ssdtrain/core/offloader.hpp"
#include "ssdtrain/core/planner.hpp"
#include "ssdtrain/core/tensor_cache.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/hw/node.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/parallel/parallel_config.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/sched/schedule.hpp"
#include "ssdtrain/sweep/cli.hpp"
#include "ssdtrain/sweep/runner.hpp"
#include "ssdtrain/sweep/spec.hpp"
#include "ssdtrain/trace/chrome_trace.hpp"
