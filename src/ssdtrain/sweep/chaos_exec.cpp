#include "ssdtrain/sweep/chaos_exec.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

namespace {

std::size_t parse_count(std::string_view key, std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(text.c_str(), &end, 10);
  util::expects(end != text.c_str() && *end == '\0' && errno != ERANGE &&
                    n >= 1 && n <= 1 << 20,
                "--chaos-exec: '" + std::string(key) +
                    "' expects a positive integer, got '" + text + "'");
  return static_cast<std::size_t>(n);
}

}  // namespace

ChaosExec ChaosExec::parse(std::string_view text) {
  ChaosExec exec;
  if (text.empty()) return exec;
  const std::size_t colon = text.find(':');
  util::expects(colon != std::string_view::npos,
                "--chaos-exec expects kill:... or stall:..., got '" +
                    std::string(text) + "'");
  const std::string_view kind = text.substr(0, colon);
  util::expects(kind == "kill" || kind == "stall",
                "--chaos-exec: unknown kind '" + std::string(kind) +
                    "' (known: kill, stall)");
  exec.kind = kind == "kill" ? Kind::kill : Kind::stall;
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    std::size_t comma = rest.find(',');
    if (comma == std::string_view::npos) comma = rest.size();
    const std::string_view item = rest.substr(0, comma);
    const std::size_t eq = item.find('=');
    util::expects(eq != std::string_view::npos && eq > 0,
                  "--chaos-exec: expected key=value, got '" +
                      std::string(item) + "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "after") {
      exec.after = parse_count(key, value);
    } else if (key == "tear" && exec.kind == Kind::kill) {
      exec.tear = value == "1" || value == "true";
    } else {
      util::expects(false, "--chaos-exec: unknown key '" + std::string(key) +
                               "' for '" + std::string(kind) + "'");
    }
    if (comma == rest.size()) break;
    rest = rest.substr(comma + 1);
  }
  util::expects(exec.after >= 1, "--chaos-exec: 'after' is required");
  return exec;
}

void ChaosExec::maybe_enact(std::size_t rows_committed,
                            const std::string& csv_path) const {
  if (!enabled() || rows_committed != after) return;
  if (kind == Kind::stall) {
    // The process freezes but stays alive: its CSV row count — the
    // heartbeat — stops advancing, and the supervisor's stall detector has
    // to notice and SIGKILL it (SIGSTOP cannot be caught or blocked, and a
    // stopped process cannot defer the later SIGKILL either).
    ::kill(::getpid(), SIGSTOP);
    return;  // only reached if something SIGCONTs us; resume normally
  }
  if (tear) {
    // Die mid-write: an unterminated partial row whose cell prefix looks
    // plausible. CsvResume must not count it and the relaunched worker's
    // CsvWriter append-mode repair must truncate it.
    std::ofstream out(csv_path, std::ios::binary | std::ios::app);
    out << "9999,torn-partial-ro";
    out.flush();
  }
  ::kill(::getpid(), SIGKILL);
  // SIGKILL is not deliverable to a zombie only; for a live process it is
  // immediate and unblockable — loop in case of scheduler delay.
  for (;;) ::pause();
}

}  // namespace ssdtrain::sweep
