#pragma once

/// \file chaos_exec.hpp
/// Worker-side chaos enactment for the sweep orchestrator. The driver's
/// seeded ChaosEngine (orchestrate/chaos.hpp) decides *whether* a launch
/// misbehaves; the worker enacts the decision on itself via the
/// --chaos-exec flag so the chaos point lands on an exact CSV row boundary
/// instead of a kill-signal poll race:
///
///   --chaos-exec "kill:after=3"         SIGKILL self after committing 3 rows
///   --chaos-exec "kill:after=3,tear=1"  ... and leave an unterminated
///                                       partial row (a torn CSV tail) first
///   --chaos-exec "stall:after=2"        SIGSTOP self after committing 2 rows
///
/// Self-SIGKILL models a worker crash (OOM kill, node loss); the torn
/// variant models dying mid-write, which the resume path must repair.
/// Self-SIGSTOP models a hang (wedged I/O, livelock): the process stays
/// alive but its heartbeat — the CSV row count — stops advancing, which is
/// exactly what the supervisor's stall detection watches for.

#include <cstddef>
#include <string>
#include <string_view>

namespace ssdtrain::sweep {

struct ChaosExec {
  enum class Kind { none, kill, stall };
  Kind kind = Kind::none;
  std::size_t after = 0;  ///< CSV rows committed before enacting
  bool tear = false;      ///< kill only: append a partial row first

  [[nodiscard]] bool enabled() const { return kind != Kind::none; }

  /// Parses the --chaos-exec grammar ("" => disabled). Malformed text is a
  /// contract violation naming the offending token.
  static ChaosExec parse(std::string_view text);

  /// Called after each committed (flushed, newline-terminated) CSV row with
  /// the running count. When the count reaches `after`, enacts: kill
  /// appends an unterminated partial row to \p csv_path when `tear` is set,
  /// then SIGKILLs the process; stall SIGSTOPs it. Does not return when it
  /// enacts a kill.
  void maybe_enact(std::size_t rows_committed,
                   const std::string& csv_path) const;
};

}  // namespace ssdtrain::sweep
