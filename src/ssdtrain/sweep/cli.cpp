#include "ssdtrain/sweep/cli.hpp"

#include <algorithm>

#include "ssdtrain/sweep/chaos_exec.hpp"
#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

namespace {

void parse_points_list(std::string_view list, CliOptions& options) {
  util::expects(!list.empty(), "--points requires a=1[,b=2...]");
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string_view item = list.substr(start, comma - start);
    const std::size_t eq = item.find('=');
    util::expects(eq != std::string_view::npos && eq > 0 &&
                      eq + 1 < item.size(),
                  "--points entries must look like axis=value, got '" +
                      std::string(item) + "'");
    options.point_filter.emplace_back(std::string(item.substr(0, eq)),
                                      std::string(item.substr(eq + 1)));
    start = comma + 1;
    if (comma == list.size()) break;
  }
}

// --pp/--tp/--dp values: a parallelism degree is a small positive integer.
int parse_degree(std::string_view flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(text, &end, 10);
  util::expects(end != text && *end == '\0' && errno != ERANGE && n >= 1 &&
                    n <= 4096,
                std::string(flag) + " expects an integer in [1, 4096], got '" +
                    std::string(text) + "'");
  return static_cast<int>(n);
}

parallel::ZeroStage parse_zero_stage(const char* text) {
  const std::string_view value = text;
  if (value == "none" || value == "0") return parallel::ZeroStage::none;
  if (value == "1" || value == "stage1") return parallel::ZeroStage::stage1;
  if (value == "2" || value == "stage2") return parallel::ZeroStage::stage2;
  if (value == "3" || value == "stage3") return parallel::ZeroStage::stage3;
  util::expects(false, "--zero expects none|1|2|3, got '" +
                           std::string(value) + "'");
  return parallel::ZeroStage::none;  // unreachable
}

// "I/N" with 0 <= I < N and N in [1, 4096].
void parse_shard(const char* text, CliOptions& options) {
  const std::string_view value = text;
  const std::size_t slash = value.find('/');
  util::expects(slash != std::string_view::npos && slash > 0 &&
                    slash + 1 < value.size(),
                "--shard expects I/N (e.g. 0/2), got '" + std::string(value) +
                    "'");
  const std::string index_text(value.substr(0, slash));
  const std::string count_text(value.substr(slash + 1));
  char* end = nullptr;
  errno = 0;
  const long index = std::strtol(index_text.c_str(), &end, 10);
  util::expects(end != index_text.c_str() && *end == '\0' &&
                    errno != ERANGE && index >= 0,
                "--shard index must be a non-negative integer, got '" +
                    index_text + "'");
  end = nullptr;
  errno = 0;
  const long count = std::strtol(count_text.c_str(), &end, 10);
  util::expects(end != count_text.c_str() && *end == '\0' &&
                    errno != ERANGE && count >= 1 && count <= 4096,
                "--shard count must be an integer in [1, 4096], got '" +
                    count_text + "'");
  util::expects(index < count, "--shard index " + index_text +
                                   " out of range for " + count_text +
                                   " shards");
  options.shard_index = static_cast<int>(index);
  options.shard_count = static_cast<int>(count);
}

}  // namespace

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--workers") {
      util::expects(i + 1 < argc, "--workers requires a value");
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const long n = std::strtol(text, &end, 10);
      // 4096 bounds even absurd machines; anything larger is a typo, not a
      // core count.
      util::expects(end != text && *end == '\0' && errno != ERANGE &&
                        n >= 0 && n <= 4096,
                    "--workers expects an integer in [0, 4096], got '" +
                        std::string(text) + "'");
      options.workers = static_cast<std::size_t>(n);
    } else if (arg == "--csv") {
      util::expects(i + 1 < argc, "--csv requires a path");
      options.csv_path = argv[++i];
      util::expects(!options.csv_path.empty(), "--csv path is empty");
    } else if (arg == "--points") {
      util::expects(i + 1 < argc, "--points requires a=1[,b=2...]");
      parse_points_list(argv[++i], options);
    } else if (arg == "--point-timeout") {
      util::expects(i + 1 < argc, "--point-timeout requires seconds");
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const double seconds = std::strtod(text, &end);
      util::expects(end != text && *end == '\0' && errno != ERANGE &&
                        seconds >= 0.0,
                    "--point-timeout expects a non-negative number of "
                    "seconds, got '" +
                        std::string(text) + "'");
      options.point_timeout = seconds;
    } else if (arg == "--no-replay") {
      options.no_replay = true;
    } else if (arg == "--pp") {
      util::expects(i + 1 < argc, "--pp requires a degree");
      options.pipeline_parallel = parse_degree(arg, argv[++i]);
    } else if (arg == "--tp") {
      util::expects(i + 1 < argc, "--tp requires a degree");
      options.tensor_parallel = parse_degree(arg, argv[++i]);
    } else if (arg == "--dp") {
      util::expects(i + 1 < argc, "--dp requires a degree");
      options.data_parallel = parse_degree(arg, argv[++i]);
    } else if (arg == "--zero") {
      util::expects(i + 1 < argc, "--zero requires none|1|2|3");
      options.zero = parse_zero_stage(argv[++i]);
    } else if (arg == "--faults") {
      util::expects(i + 1 < argc, "--faults requires a spec list");
      options.faults = argv[++i];
      util::expects(!options.faults.empty(), "--faults spec list is empty");
      // Parse eagerly so grammar errors surface at startup.
      (void)fault::parse_faults(options.faults);
    } else if (arg == "--fault-seed") {
      util::expects(i + 1 < argc, "--fault-seed requires a value");
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const unsigned long long n = std::strtoull(text, &end, 10);
      util::expects(end != text && *end == '\0' && errno != ERANGE,
                    "--fault-seed expects a non-negative integer, got '" +
                        std::string(text) + "'");
      options.fault_seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--ckpt-interval") {
      util::expects(i + 1 < argc, "--ckpt-interval requires a step count");
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const long n = std::strtol(text, &end, 10);
      util::expects(end != text && *end == '\0' && errno != ERANGE &&
                        n >= 1 && n <= 1000000,
                    "--ckpt-interval expects an integer in [1, 1000000], "
                    "got '" +
                        std::string(text) + "'");
      options.ckpt_interval = static_cast<int>(n);
    } else if (arg == "--ckpt-auto") {
      options.ckpt_auto = true;
    } else if (arg == "--mtbf") {
      util::expects(i + 1 < argc, "--mtbf requires seconds");
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const double seconds = std::strtod(text, &end);
      util::expects(end != text && *end == '\0' && errno != ERANGE &&
                        seconds > 0.0,
                    "--mtbf expects a positive number of seconds, got '" +
                        std::string(text) + "'");
      options.mtbf = seconds;
    } else if (arg == "--shard") {
      util::expects(i + 1 < argc, "--shard requires I/N");
      parse_shard(argv[++i], options);
    } else if (arg == "--program-cache") {
      util::expects(i + 1 < argc, "--program-cache requires a directory");
      options.program_cache_dir = argv[++i];
      util::expects(!options.program_cache_dir.empty(),
                    "--program-cache directory is empty");
    } else if (arg == "--no-program-cache") {
      options.no_program_cache = true;
    } else if (arg == "--chaos-exec") {
      util::expects(i + 1 < argc, "--chaos-exec requires a spec");
      options.chaos_exec = argv[++i];
      // Parse eagerly so grammar errors surface at startup.
      (void)ChaosExec::parse(options.chaos_exec);
    } else if (arg == "--retries") {
      util::expects(i + 1 < argc, "--retries requires a count");
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const long n = std::strtol(text, &end, 10);
      util::expects(end != text && *end == '\0' && errno != ERANGE &&
                        n >= 0 && n <= 100,
                    "--retries expects an integer in [0, 100], got '" +
                        std::string(text) + "'");
      options.retries = static_cast<int>(n);
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      util::expects(false,
                    "unknown flag: " + std::string(arg) +
                        " (supported: --workers N, --csv PATH, "
                        "--points a=1,b=2, --point-timeout S, --retries N, "
                        "--no-replay, --pp N, --tp N, --dp N, "
                        "--zero none|1|2|3, --faults SPECS, "
                        "--fault-seed N, --ckpt-interval N, --ckpt-auto, "
                        "--mtbf SECONDS, --shard I/N, "
                        "--program-cache DIR, --no-program-cache, "
                        "--chaos-exec SPEC)");
    } else {
      options.positional.emplace_back(arg);
    }
  }
  // Validate the checkpoint cadence eagerly so contradictions (both
  // cadences, --ckpt-auto without --mtbf) surface at startup.
  (void)options.checkpoint_policy();
  return options;
}

bool matches_point_filter(const CliOptions& options,
                          const SweepPoint& point) {
  for (const auto& [axis, expected] : options.point_filter) {
    // value() rejects unknown axis names (typo protection).
    if (to_string(point.value(axis)) != expected) return false;
  }
  return true;
}

std::vector<SweepPoint> select_points(const SweepSpec& spec,
                                      const CliOptions& options) {
  std::vector<SweepPoint> selected = spec.points();
  if (options.points_enabled()) {
    const std::vector<std::string> names = spec.axis_names();
    for (const auto& [axis, value] : options.point_filter) {
      (void)value;
      util::expects(
          std::find(names.begin(), names.end(), axis) != names.end(),
          "--points names unknown axis '" + axis + "'");
    }
    std::vector<SweepPoint> filtered;
    for (SweepPoint& point : selected) {
      if (matches_point_filter(options, point)) {
        filtered.push_back(std::move(point));
      }
    }
    util::check(!filtered.empty(),
                "--points selection matches no grid cell");
    selected = std::move(filtered);
  }
  if (options.sharded()) {
    // Deterministic round-robin partition of the (filtered) selection:
    // sweep_merge's interleave is exactly the inverse, restoring the
    // canonical single-process order. A shard may come up empty when there
    // are more shards than points — it writes a header-only CSV.
    std::vector<SweepPoint> shard;
    for (std::size_t j = 0; j < selected.size(); ++j) {
      if (j % static_cast<std::size_t>(options.shard_count) ==
          static_cast<std::size_t>(options.shard_index)) {
        shard.push_back(std::move(selected[j]));
      }
    }
    selected = std::move(shard);
  }
  return selected;
}

}  // namespace ssdtrain::sweep
