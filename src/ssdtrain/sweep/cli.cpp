#include "ssdtrain/sweep/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--workers") {
      util::expects(i + 1 < argc, "--workers requires a value");
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const long n = std::strtol(text, &end, 10);
      // 4096 bounds even absurd machines; anything larger is a typo, not a
      // core count.
      util::expects(end != text && *end == '\0' && errno != ERANGE &&
                        n >= 0 && n <= 4096,
                    "--workers expects an integer in [0, 4096], got '" +
                        std::string(text) + "'");
      options.workers = static_cast<std::size_t>(n);
    } else if (arg == "--csv") {
      util::expects(i + 1 < argc, "--csv requires a path");
      options.csv_path = argv[++i];
      util::expects(!options.csv_path.empty(), "--csv path is empty");
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      util::expects(false, "unknown flag: " + std::string(arg) +
                               " (supported: --workers N, --csv PATH)");
    } else {
      options.positional.emplace_back(arg);
    }
  }
  return options;
}

}  // namespace ssdtrain::sweep
