#pragma once

/// \file cli.hpp
/// Shared command-line handling for the sweep-driven bench and example
/// binaries: every one of them accepts
///   --workers N         worker threads for the SweepRunner (default: all
///                       cores)
///   --csv PATH          dump the sweep's data series as CSV via
///                       util::CsvWriter; when PATH already holds rows from
///                       an earlier run, benches wired for resume skip the
///                       completed points and append only the missing ones
///   --points a=1,b=2    run only the grid cells whose coordinates match
///                       every listed axis=value pair (repeatable; values
///                       compare by their axis to_string form)
///   --point-timeout S   wall-clock budget per sweep point in seconds;
///                       over-budget points are recorded as errors instead
///                       of hanging the batch (0 = no timeout)
///   --retries N         re-run a throwing point up to N extra times
///   --no-replay         force the legacy trace-every-step execution path
///                       (step record/replay is on by default; this flag is
///                       the A/B switch — results are bit-identical)
///   --pp N / --tp N / --dp N
///                       override the pipeline / tensor / data parallelism
///                       of every session the bench builds (unset = the
///                       bench's own defaults, so golden CSVs reproduce
///                       bit-for-bit without the flags)
///   --zero none|1|2|3   override the ZeRO stage the same way
///   --faults SPECS      seeded fault injection: a semicolon-separated
///                       FaultSpec list applied to every session the bench
///                       builds; unset = no injector, byte-identical output.
///                       Full grammar (fault::parse_faults):
///                         kind[:key=value[,key=value...]][;kind...]
///                       kinds: ssd-latency (needs latency=SECONDS),
///                       ssd-derate / pcie-derate / nvlink-derate /
///                       dp-derate (factor in (0,1]), gpu-straggler
///                       (factor >= 1), io-error (rate in (0,1]),
///                       ssd-dropout (member=I), stage-crash (needs
///                       dur=SECONDS)
///                       common keys: gpu=G (-1 = all, the default),
///                       at=SECONDS, dur=SECONDS
///                       stage-crash only: lose=none|state (state wipes
///                       the stage's device state — needs a checkpoint
///                       policy to recover), recover=resume|rollback
///                       (implied by lose; resume+lose=state and
///                       rollback+lose=none are rejected)
///   --fault-seed N      seed for the injector's RNG (default 0); identical
///                       seeds reproduce bit-identical fault runs
///   --ckpt-interval N   crash-consistent checkpoint to the offload SSDs
///                       every N completed steps (shadow write + atomic
///                       manifest flip; flows contend with activation
///                       offload and age the NAND). Unset = no
///                       checkpointing, byte-identical output
///   --ckpt-auto         Young–Daly auto cadence: the first boundary
///                       commits to measure the checkpoint cost C, then
///                       the interval is sqrt(2*C*MTBF). Requires --mtbf
///   --mtbf SECONDS      mean time between failures assumed by --ckpt-auto
///   --shard I/N         run only this process's 1/N slice of the grid:
///                       after --points filtering, position j of the
///                       selection belongs to shard j mod N. Shards are
///                       independent OS processes; tools/sweep_merge
///                       reassembles their CSVs into the canonical
///                       single-process row order, byte-identically
///   --program-cache DIR persistent StepProgram store shared across
///                       processes: sessions consult DIR before tracing and
///                       publish new recordings there (atomic
///                       rename-on-write), so sibling shards and later runs
///                       skip the trace step of any configuration already
///                       seen
///   --no-program-cache  disable the in-process program cache the benches
///                       share across their sweep points by default (the
///                       A/B switch for cold-trace comparisons; results are
///                       bit-identical either way)
///   --chaos-exec SPEC   self-inflicted chaos for orchestrator testing
///                       (sweep::ChaosExec grammar: "kill:after=N[,tear=1]"
///                       or "stall:after=N"): benches that stream their CSV
///                       rows through sweep::CsvProgress SIGKILL/SIGSTOP
///                       themselves after committing N rows. Normally
///                       injected by sweep_orchestrate's seeded --chaos
///                       engine (grammar: "kind:rate=P[,after=N][,tear=1]
///                       [,kind:rate=P...]" with kinds kill|stall, seeded
///                       by --chaos-seed), not typed by hand
/// plus its own positional arguments, which are passed through untouched.

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ssdtrain/ckpt/policy.hpp"
#include "ssdtrain/fault/fault.hpp"
#include "ssdtrain/parallel/parallel_config.hpp"
#include "ssdtrain/sweep/runner.hpp"
#include "ssdtrain/sweep/spec.hpp"

namespace ssdtrain::sweep {

struct CliOptions {
  std::size_t workers = 0;  ///< 0 = one worker per hardware thread
  std::string csv_path;     ///< empty = no CSV output
  double point_timeout = 0.0;  ///< seconds; 0 = no per-point timeout
  int retries = 0;             ///< extra attempts for throwing points
  bool no_replay = false;      ///< force the trace path in every session
  /// --points constraints, in order of appearance.
  std::vector<std::pair<std::string, std::string>> point_filter;
  std::vector<std::string> positional;
  // --pp/--tp/--dp/--zero parallelism overrides; 0 / nullopt = unset.
  int pipeline_parallel = 0;
  int tensor_parallel = 0;
  int data_parallel = 0;
  std::optional<parallel::ZeroStage> zero;
  /// --faults spec text (empty = injection disabled) and --fault-seed.
  std::string faults;
  std::uint64_t fault_seed = 0;
  /// --ckpt-interval / --ckpt-auto / --mtbf checkpoint cadence; all unset
  /// by default (no checkpointing — golden CSVs reproduce bit-for-bit).
  int ckpt_interval = 0;
  bool ckpt_auto = false;
  double mtbf = 0.0;
  /// --shard I/N slice of the (filtered) grid this process runs.
  int shard_index = 0;
  int shard_count = 1;
  /// --program-cache directory (empty = in-process tier only) and the
  /// --no-program-cache kill switch.
  std::string program_cache_dir;
  bool no_program_cache = false;
  /// --chaos-exec spec text ("" = disabled); parsed eagerly at startup.
  std::string chaos_exec;

  [[nodiscard]] bool csv_enabled() const { return !csv_path.empty(); }
  [[nodiscard]] bool sharded() const { return shard_count > 1; }
  /// Benches wire a shared ProgramCache into every session unless the
  /// cold-trace A/B switch is on.
  [[nodiscard]] bool program_cache_enabled() const {
    return !no_program_cache;
  }
  [[nodiscard]] bool faults_enabled() const { return !faults.empty(); }
  [[nodiscard]] bool checkpoint_enabled() const {
    return ckpt_interval > 0 || ckpt_auto;
  }

  /// Parsed --faults/--fault-seed as the config sessions take. Parse errors
  /// in the spec text are contract violations (reported at startup, not
  /// mid-sweep).
  [[nodiscard]] fault::FaultConfig fault_config() const {
    fault::FaultConfig config;
    config.specs = fault::parse_faults(faults);
    config.seed = fault_seed;
    return config;
  }

  /// Parsed --ckpt-interval/--ckpt-auto/--mtbf as the policy sessions
  /// take (disabled when neither cadence flag was given). validate()
  /// rejects contradictory combinations at startup.
  [[nodiscard]] ckpt::CheckpointPolicy checkpoint_policy() const {
    ckpt::CheckpointPolicy policy;
    policy.every_steps = ckpt_interval;
    policy.auto_interval = ckpt_auto;
    policy.mtbf = mtbf;
    policy.validate();
    return policy;
  }

  [[nodiscard]] bool points_enabled() const { return !point_filter.empty(); }
  [[nodiscard]] bool parallel_overridden() const {
    return pipeline_parallel > 0 || tensor_parallel > 0 ||
           data_parallel > 0 || zero.has_value();
  }

  /// Overwrites only the axes set on the command line, leaving the bench's
  /// defaults in place otherwise (the golden-CSV compatibility contract).
  void apply_parallel(parallel::ParallelConfig& parallel) const {
    if (pipeline_parallel > 0) parallel.pipeline_parallel = pipeline_parallel;
    if (tensor_parallel > 0) parallel.tensor_parallel = tensor_parallel;
    if (data_parallel > 0) parallel.data_parallel = data_parallel;
    if (zero) parallel.zero = *zero;
  }

  /// The per-point policy for SweepRunner::map/run.
  [[nodiscard]] MapOptions map_options() const {
    return MapOptions{point_timeout, retries};
  }
};

/// Parses argv. Unknown "--flag" arguments are contract violations;
/// anything else lands in `positional` in order.
CliOptions parse_cli(int argc, char** argv);

/// True when \p point satisfies every --points constraint (vacuously true
/// without --points). Constraint keys must name axes of the point.
bool matches_point_filter(const CliOptions& options, const SweepPoint& point);

/// The spec's grid restricted to the --points selection (whole grid when no
/// --points was given), then to this process's --shard slice: position j of
/// the selection belongs to shard j mod shard_count, preserving order.
/// Constraint keys are validated against the spec's axis names, and an
/// empty --points selection is a contract violation (the requested cell
/// does not exist); an empty *shard* of a non-empty selection is fine (more
/// shards than points).
std::vector<SweepPoint> select_points(const SweepSpec& spec,
                                      const CliOptions& options);

}  // namespace ssdtrain::sweep
