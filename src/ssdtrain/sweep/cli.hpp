#pragma once

/// \file cli.hpp
/// Shared command-line handling for the sweep-driven bench and example
/// binaries: every one of them accepts
///   --workers N   worker threads for the SweepRunner (default: all cores)
///   --csv PATH    dump the sweep's data series as CSV via util::CsvWriter
/// plus its own positional arguments, which are passed through untouched.

#include <cstddef>
#include <string>
#include <vector>

namespace ssdtrain::sweep {

struct CliOptions {
  std::size_t workers = 0;  ///< 0 = one worker per hardware thread
  std::string csv_path;     ///< empty = no CSV output
  std::vector<std::string> positional;

  [[nodiscard]] bool csv_enabled() const { return !csv_path.empty(); }
};

/// Parses argv. Unknown "--flag" arguments are contract violations;
/// anything else lands in `positional` in order.
CliOptions parse_cli(int argc, char** argv);

}  // namespace ssdtrain::sweep
