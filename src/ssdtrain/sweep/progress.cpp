#include "ssdtrain/sweep/progress.hpp"

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

CsvProgress::CsvProgress(std::string path,
                         const std::vector<std::string>& header,
                         ChaosExec chaos)
    : path_(std::move(path)),
      writer_(path_, header, /*append=*/true),
      chaos_(chaos) {}

void CsvProgress::commit(std::size_t index,
                         std::vector<std::vector<std::string>> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  util::expects(index >= next_ && !pending_.contains(index),
                "CsvProgress: point index committed twice");
  pending_.emplace(index, std::move(rows));
  for (auto it = pending_.find(next_); it != pending_.end();
       it = pending_.find(next_)) {
    for (const std::vector<std::string>& row : it->second) {
      writer_.add_row(row);
      // Flush per row, not per point: the heartbeat advances and the torn
      // tail a kill can leave is at most one row, never a block.
      writer_.flush();
      ++committed_;
      chaos_.maybe_enact(committed_, path_);
    }
    pending_.erase(it);
    ++next_;
  }
}

void CsvProgress::commit(std::size_t index, std::vector<std::string> row) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(std::move(row));
  commit(index, std::move(rows));
}

std::size_t CsvProgress::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

}  // namespace ssdtrain::sweep
