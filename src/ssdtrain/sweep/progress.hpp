#pragma once

/// \file progress.hpp
/// Streaming CSV commits for resumable, supervised sweeps. The classic
/// bench shape — run the whole grid, then write every row — leaves nothing
/// on disk when the process dies, and gives a supervising driver no
/// heartbeat to watch. CsvProgress inverts that: each sweep point commits
/// its row(s) as soon as it finishes, and rows are *flushed in canonical
/// order* (an in-order commit window over the out-of-order work-stealing
/// completions), so
///
///   - the file on disk is always a clean prefix of the single-process
///     output plus at most one torn tail (which resume repairs), keeping
///     the byte-identity contract of golden CSVs and sweep_merge;
///   - the newline-terminated row count is a monotone progress heartbeat
///     the orchestrator polls (sweep::CsvResume counts rows the same way);
///   - a seeded --chaos-exec spec can SIGKILL/SIGSTOP the worker at an
///     exact committed-row boundary, making crash recovery testable.
///
/// A point that fails (throws / times out) never commits, which stalls the
/// window: later rows stay buffered and are not written. That is the safe
/// behaviour — the bench exits nonzero, the orchestrator relaunches it, and
/// resume re-runs everything from the hole onward.

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ssdtrain/sweep/chaos_exec.hpp"
#include "ssdtrain/util/csv.hpp"

namespace ssdtrain::sweep {

class CsvProgress {
 public:
  /// Opens \p path with util::CsvWriter in append mode (an existing torn
  /// tail is truncated away — the CsvResume scan that chose the remaining
  /// points ignores it the same way). \p chaos is the worker-side
  /// enactment of the orchestrator's --chaos-exec spec (disabled default).
  CsvProgress(std::string path, const std::vector<std::string>& header,
              ChaosExec chaos = {});

  /// Commits the rows of the point at position \p index of this process's
  /// todo list (0-based, in canonical grid order). Thread-safe; rows reach
  /// the file once every earlier index has committed, each flushed before
  /// the chaos hook sees the new count. Every index must be committed at
  /// most once; gaps stall the window forever (see file comment).
  void commit(std::size_t index, std::vector<std::vector<std::string>> rows);

  /// One-row convenience.
  void commit(std::size_t index, std::vector<std::string> row);

  /// Rows flushed to disk so far (excluding the header).
  [[nodiscard]] std::size_t committed() const;

 private:
  std::string path_;
  util::CsvWriter writer_;
  ChaosExec chaos_;
  mutable std::mutex mu_;
  std::size_t next_ = 0;       ///< next point index the window can flush
  std::size_t committed_ = 0;  ///< rows flushed
  std::map<std::size_t, std::vector<std::vector<std::string>>> pending_;
};

}  // namespace ssdtrain::sweep
