#include "ssdtrain/sweep/resume.hpp"

#include <fstream>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

CsvResume::CsvResume(const std::string& path,
                     std::vector<std::string> key_columns)
    : key_columns_(std::move(key_columns)) {
  util::expects(!key_columns_.empty(), "resume needs at least one key column");
  std::ifstream in(path);
  if (!in.good()) return;  // nothing to resume from
  std::string line;
  if (!std::getline(in, line)) return;  // empty file
  const std::vector<std::string> header = split_csv_line(line);
  util::check(header.size() >= key_columns_.size(),
              "existing CSV '" + path + "' has fewer columns than the "
              "sweep's key columns — refusing to resume into it");
  for (std::size_t i = 0; i < key_columns_.size(); ++i) {
    util::check(header[i] == key_columns_[i],
                "existing CSV '" + path + "' key column " +
                    std::to_string(i) + " is '" + header[i] +
                    "', expected '" + key_columns_[i] +
                    "' — refusing to resume into a different sweep's file");
  }
  resuming_ = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = split_csv_line(line);
    // A point only counts as completed when the whole row made it to disk:
    // a run killed mid-write can leave a tail row holding the key columns
    // but not the metrics, and marking it done would skip the point
    // forever.
    if (cells.size() < header.size()) continue;
    cells.resize(key_columns_.size());
    seen_.insert(std::move(cells));
  }
}

bool CsvResume::contains(const SweepPoint& point) const {
  std::vector<std::string> key;
  key.reserve(point.coordinates().size());
  for (const auto& [name, value] : point.coordinates()) {
    (void)name;
    key.push_back(to_string(value));
  }
  key.resize(key_columns_.size());
  return contains(key);
}

std::vector<SweepPoint> CsvResume::remaining(
    std::vector<SweepPoint> points) const {
  if (!resuming_) return points;
  std::vector<SweepPoint> todo;
  for (SweepPoint& point : points) {
    if (!contains(point)) todo.push_back(std::move(point));
  }
  return todo;
}

}  // namespace ssdtrain::sweep
