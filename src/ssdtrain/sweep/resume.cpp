#include "ssdtrain/sweep/resume.hpp"

#include <fstream>
#include <sstream>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

CsvResume::CsvResume(const std::string& path,
                     std::vector<std::string> key_columns)
    : key_columns_(std::move(key_columns)) {
  util::expects(!key_columns_.empty(), "resume needs at least one key column");
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return;  // nothing to resume from
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  // Complete ('\n'-terminated) lines only: a run killed mid-write leaves an
  // unterminated tail that may hold the right number of commas with a
  // truncated final cell — getline would hand it over looking whole, and
  // counting it as completed would skip the interrupted point forever.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = content.find('\n', start);
       nl != std::string::npos; nl = content.find('\n', start)) {
    lines.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  // The unterminated remainder (if any) is the torn tail the writer's
  // append mode will truncate; record the repair so callers can surface it.
  repaired_tail_ = start < content.size();
  if (lines.empty()) return;  // empty file, or not even a finished header
  const std::vector<std::string> header = split_csv_line(lines.front());
  util::check(header.size() >= key_columns_.size(),
              "existing CSV '" + path + "' has fewer columns than the "
              "sweep's key columns — refusing to resume into it");
  for (std::size_t i = 0; i < key_columns_.size(); ++i) {
    util::check(header[i] == key_columns_[i],
                "existing CSV '" + path + "' key column " +
                    std::to_string(i) + " is '" + header[i] +
                    "', expected '" + key_columns_[i] +
                    "' — refusing to resume into a different sweep's file");
  }
  resuming_ = true;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> cells = split_csv_line(lines[i]);
    // Second completeness gate: a terminated row that still lost cells
    // (torn write) must not mark its point done either.
    if (cells.size() < header.size()) {
      ++torn_rows_;
      continue;
    }
    cells.resize(key_columns_.size());
    seen_.insert(std::move(cells));
  }
}

bool CsvResume::contains(const SweepPoint& point) const {
  std::vector<std::string> key;
  key.reserve(point.coordinates().size());
  for (const auto& [name, value] : point.coordinates()) {
    (void)name;
    key.push_back(to_string(value));
  }
  key.resize(key_columns_.size());
  return contains(key);
}

std::vector<SweepPoint> CsvResume::remaining(
    std::vector<SweepPoint> points) const {
  if (!resuming_) return points;
  std::vector<SweepPoint> todo;
  for (SweepPoint& point : points) {
    if (!contains(point)) todo.push_back(std::move(point));
  }
  return todo;
}

}  // namespace ssdtrain::sweep
