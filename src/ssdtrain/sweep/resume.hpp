#pragma once

/// \file resume.hpp
/// Resumable sweeps: when a bench is re-run with --csv pointing at a file
/// an earlier (possibly interrupted) run produced, the points whose key
/// columns already appear in the file are skipped and only the missing
/// rows are computed and appended. The key columns are the leading CSV
/// columns that identify a grid cell (they mirror the sweep axes).

#include <set>
#include <string>
#include <vector>

#include "ssdtrain/sweep/spec.hpp"

namespace ssdtrain::sweep {

class CsvResume {
 public:
  /// Reads \p path when it exists. \p key_columns are the leading header
  /// columns identifying a grid cell; an existing file whose header does
  /// not start with them is a contract violation (a different sweep's
  /// output — refusing beats silently mixing grids).
  CsvResume(const std::string& path, std::vector<std::string> key_columns);

  /// True when \p path held at least a header from an earlier run.
  [[nodiscard]] bool resuming() const { return resuming_; }

  /// Completed rows found in the existing file.
  [[nodiscard]] std::size_t completed() const { return seen_.size(); }

  /// True when the existing file ended in an unterminated partial row —
  /// the previous run died mid-write. The tail is not counted as done here
  /// and CsvWriter's append mode truncates it; this flag makes the repair
  /// observable (orchestrator logs, "resuming:" messages) instead of
  /// silent.
  [[nodiscard]] bool repaired_tail() const { return repaired_tail_; }

  /// Newline-terminated rows that still lost cells (torn mid-row but
  /// terminated — e.g. a partial row another writer finished the line of).
  /// Not counted as done either.
  [[nodiscard]] std::size_t torn_rows() const { return torn_rows_; }

  /// True when a row with exactly these key-column cells is present.
  [[nodiscard]] bool contains(const std::vector<std::string>& key) const {
    return seen_.contains(key);
  }

  /// Point-shaped convenience: the key is the point's coordinates in axis
  /// order, rendered with sweep::to_string — matching benches that write
  /// their axis columns the same way.
  [[nodiscard]] bool contains(const SweepPoint& point) const;

  /// The subset of \p points not yet present in the file.
  [[nodiscard]] std::vector<SweepPoint> remaining(
      std::vector<SweepPoint> points) const;

 private:
  std::vector<std::string> key_columns_;
  std::set<std::vector<std::string>> seen_;
  bool resuming_ = false;
  bool repaired_tail_ = false;
  std::size_t torn_rows_ = 0;
};

/// Splits one CSV line into cells (RFC 4180 quoting, as CsvWriter emits).
std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace ssdtrain::sweep
