#include "ssdtrain/sweep/runner.hpp"

#include <algorithm>

#include "ssdtrain/util/logging.hpp"

namespace ssdtrain::sweep {

SweepRunner::SweepRunner(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void SweepRunner::run_batch(std::vector<std::function<void()>> tasks) {
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  if (tasks.empty()) return;

  in_flight_.store(tasks.size(), std::memory_order_relaxed);
  {
    // Counter first: a worker that grabs a task the instant it lands must
    // never underflow unclaimed_. The lock pairs with the wait predicate so
    // the notify below cannot be missed.
    std::lock_guard<std::mutex> lock(mu_);
    unclaimed_.fetch_add(tasks.size(), std::memory_order_relaxed);
  }
  // Round-robin the points across worker deques; stealing rebalances any
  // skew in per-point cost.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    WorkerQueue& q = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(tasks[i]));
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

bool SweepRunner::try_pop_or_steal(std::size_t self,
                                   std::function<void()>& task) {
  // Own queue: LIFO tail for locality.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal: FIFO head of the other queues, round-robin from our right.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void SweepRunner::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop_or_steal(self, task)) {
      try {
        task();
      } catch (const std::exception& e) {
        // map() captures per-point exceptions; anything reaching here came
        // through run_batch directly. Swallowing would hide bugs — log it.
        util::log_error(std::string("sweep task threw: ") + e.what());
      } catch (...) {
        util::log_error("sweep task threw an unknown exception");
      }
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] {
      return shutdown_ || unclaimed_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_) return;
  }
}

}  // namespace ssdtrain::sweep
