#include "ssdtrain/sweep/runner.hpp"

#include <algorithm>
#include <cstdio>

#include "ssdtrain/util/logging.hpp"

namespace ssdtrain::sweep {

SweepRunner::SweepRunner(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Joining here (not between batches) is the one place a truly
  // never-returning abandoned point can still block; a merely slow one
  // only delays destruction.
  for (Replacement& r : replacements_) r.thread.join();
}

void SweepRunner::account_one() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    done_cv_.notify_all();
  }
}

void SweepRunner::spawn_replacement() {
  Replacement r;
  r.retired = std::make_shared<std::atomic<bool>>(false);
  std::atomic<bool>& flag = *r.retired;
  r.thread = std::thread([this, &flag] { replacement_loop(flag); });
  replacements_.push_back(std::move(r));
}

void SweepRunner::reap_retired_replacements() {
  // Join only the replacements that have raised their retired flag; one
  // still wedged inside an abandoned point is left running (and joined at
  // destruction) so the next batch is never blocked by it.
  std::size_t kept = 0;
  for (Replacement& r : replacements_) {
    if (r.retired->load(std::memory_order_acquire)) {
      r.thread.join();
    } else {
      // Guard the self-move: assigning a joinable std::thread onto
      // itself would call std::terminate.
      if (&replacements_[kept] != &r) replacements_[kept] = std::move(r);
      ++kept;
    }
  }
  replacements_.resize(kept);
}

void SweepRunner::run_batch(std::vector<std::function<void()>> tasks,
                            BatchState& batch, const MapOptions& options) {
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  if (tasks.empty()) return;
  reap_retired_replacements();

  in_flight_.store(tasks.size(), std::memory_order_relaxed);
  {
    // Counter first: a worker that grabs a task the instant it lands must
    // never underflow unclaimed_. The lock pairs with the wait predicate so
    // the notify below cannot be missed.
    std::lock_guard<std::mutex> lock(mu_);
    unclaimed_.fetch_add(tasks.size(), std::memory_order_relaxed);
  }
  // Round-robin the points across worker deques; stealing rebalances any
  // skew in per-point cost.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    WorkerQueue& q = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(tasks[i]));
  }
  work_cv_.notify_all();
  // Workers wedged in abandoned points from earlier batches cannot pick
  // these tasks up; restore the lost width immediately.
  const std::size_t wedged = wedged_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < wedged; ++i) spawn_replacement();

  const auto drained = [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  };
  std::unique_lock<std::mutex> lock(mu_);
  if (options.point_timeout <= 0.0) {
    done_cv_.wait(lock, drained);
    return;
  }

  // Watchdog: poll between waits, abandoning running points past their
  // wall-clock budget. Abandoning accounts the slot (so the batch can
  // drain) and spawns one replacement worker to cover the wedged one.
  const auto timeout_ns = static_cast<std::int64_t>(
      options.point_timeout * 1e9);
  while (!drained()) {
    done_cv_.wait_for(lock, std::chrono::milliseconds(20), drained);
    if (drained()) break;
    const std::int64_t now = BatchState::now_ns();
    for (std::size_t i = 0; i < batch.slots.size(); ++i) {
      SlotState& slot = batch.slots[i];
      if (slot.state.load(std::memory_order_acquire) != SlotState::kRunning) {
        continue;
      }
      const std::int64_t elapsed = now - slot.started_ns;
      if (elapsed < timeout_ns) continue;
      std::uint8_t expected = SlotState::kRunning;
      if (!slot.state.compare_exchange_strong(expected, SlotState::kAbandoned,
                                              std::memory_order_acq_rel)) {
        continue;  // the point finished in the meantime
      }
      batch.abandoned.emplace_back(i, static_cast<double>(elapsed) * 1e-9);
      util::log_warning("sweep point " + std::to_string(i) +
                        " timed out; abandoning and spawning a replacement "
                        "worker");
      // Account directly (we already hold mu_; done_cv_ is re-checked by
      // this loop, no notify needed).
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      wedged_.fetch_add(1, std::memory_order_acq_rel);
      spawn_replacement();
    }
  }
}

bool SweepRunner::try_pop_or_steal(std::size_t self,
                                   std::function<void()>& task) {
  // Own queue: LIFO tail for locality.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal: FIFO head of the other queues, round-robin from our right.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void SweepRunner::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop_or_steal(self, task)) {
      try {
        task();
      } catch (const std::exception& e) {
        // map()'s wrappers capture per-point exceptions and account their
        // slots; anything reaching here is a harness bug. Swallowing would
        // hide it — log loudly.
        util::log_error(std::string("sweep task threw: ") + e.what());
      } catch (...) {
        util::log_error("sweep task threw an unknown exception");
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] {
      return shutdown_ || unclaimed_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_) return;
  }
}

void SweepRunner::replacement_loop(std::atomic<bool>& retired) {
  // Drain whatever is queued, then retire; a replacement exists only to
  // restore lost width while a timed-out point wedges a regular worker.
  for (;;) {
    std::function<void()> task;
    if (!try_pop_or_steal(0, task)) break;
    try {
      task();
    } catch (const std::exception& e) {
      util::log_error(std::string("sweep task threw: ") + e.what());
    } catch (...) {
      util::log_error("sweep task threw an unknown exception");
    }
  }
  retired.store(true, std::memory_order_release);
}

std::string SweepRunner::format_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  return buf;
}

}  // namespace ssdtrain::sweep
