#pragma once

/// \file runner.hpp
/// Real OS-thread work-stealing pool for sharding independent sweep points
/// across hardware cores. Unlike sim::SimThreadPool (which models host
/// thread pools in simulated time), SweepRunner runs actual std::threads:
/// each worker owns a deque, pops its own tail, and steals from other
/// workers' heads when it runs dry, so skewed point costs (one OOM-retry
/// BERT config next to nine cheap ones) still keep every core busy.
///
/// Every sweep point must build its own isolated state — its own Simulator,
/// TrainingSession, RNGs — because points execute concurrently. Results are
/// written into a slot per point, so the output order is deterministic (it
/// matches the input order) no matter how the points were scheduled, and a
/// throwing point fails only that point: the exception is captured into the
/// point's Outcome and the pool keeps draining.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "ssdtrain/sweep/spec.hpp"
#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

/// Result of one sweep point: either a value or the error that killed it.
template <typename R>
struct Outcome {
  std::optional<R> value;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return error.empty(); }

  /// The value; contract violation if the point failed.
  [[nodiscard]] const R& get() const {
    util::check(ok(), "sweep point failed: " + error);
    return *value;
  }
};

class SweepRunner {
 public:
  /// \p workers = 0 uses every hardware thread (at least one).
  explicit SweepRunner(std::size_t workers = 0);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Runs fn(items[i]) for every item across the pool; out[i] holds the
  /// result (or the error message) for items[i] regardless of execution
  /// order. Blocks until the whole batch drains. Not reentrant: one map()
  /// at a time per runner.
  template <typename T, typename F>
  auto map(const std::vector<T>& items, F fn)
      -> std::vector<Outcome<std::invoke_result_t<F&, const T&>>> {
    using R = std::invoke_result_t<F&, const T&>;
    std::vector<Outcome<R>> out(items.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      tasks.push_back([&items, &out, &fn, i] {
        try {
          out[i].value.emplace(fn(items[i]));
        } catch (const std::exception& e) {
          out[i].error = e.what();
          if (out[i].error.empty()) out[i].error = "unknown error";
        } catch (...) {
          out[i].error = "unknown exception";
        }
      });
    }
    run_batch(std::move(tasks));
    return out;
  }

  /// SweepSpec convenience: fn(point) over spec.points().
  template <typename F>
  auto run(const SweepSpec& spec, F fn) {
    return map(spec.points(), std::move(fn));
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void run_batch(std::vector<std::function<void()>> tasks);
  void worker_loop(std::size_t self);
  bool try_pop_or_steal(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;                 // guards the two condvars' predicates
  std::condition_variable work_cv_;   // workers: tasks available / shutdown
  std::condition_variable done_cv_;   // caller: batch drained
  std::atomic<std::size_t> unclaimed_{0};  // queued, not yet popped
  std::atomic<std::size_t> in_flight_{0};  // popped or queued, not finished
  bool shutdown_ = false;

  std::mutex batch_mu_;  // serializes concurrent run_batch callers
};

}  // namespace ssdtrain::sweep
