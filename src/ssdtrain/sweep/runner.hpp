#pragma once

/// \file runner.hpp
/// Real OS-thread work-stealing pool for sharding independent sweep points
/// across hardware cores. Unlike sim::SimThreadPool (which models host
/// thread pools in simulated time), SweepRunner runs actual std::threads:
/// each worker owns a deque, pops its own tail, and steals from other
/// workers' heads when it runs dry, so skewed point costs (one OOM-retry
/// BERT config next to nine cheap ones) still keep every core busy.
///
/// Every sweep point must build its own isolated state — its own Simulator,
/// TrainingSession, RNGs — because points execute concurrently. Results are
/// written into a slot per point, so the output order is deterministic (it
/// matches the input order) no matter how the points were scheduled, and a
/// throwing point fails only that point: the exception is captured into the
/// point's Outcome and the pool keeps draining.
///
/// Per-point policy (MapOptions): a throwing point can be retried, and a
/// wall-clock timeout turns a stuck point into an error instead of a hung
/// batch. Timed-out points are *abandoned*, not killed — their thread keeps
/// running until the point function returns (its result is discarded), and
/// a replacement worker is spawned so queued points still drain at full
/// width. A point that literally never returns therefore cannot hang
/// map(), but will delay the runner's destructor, which joins all threads.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ssdtrain/sweep/spec.hpp"
#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

/// Result of one sweep point: either a value or the error that killed it.
template <typename R>
struct Outcome {
  std::optional<R> value;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return error.empty(); }

  /// The value; contract violation if the point failed.
  [[nodiscard]] const R& get() const {
    util::check(ok(), "sweep point failed: " + error);
    return *value;
  }
};

/// Per-point execution policy for SweepRunner::map.
struct MapOptions {
  /// Wall-clock budget per point in seconds, covering all attempts;
  /// <= 0 disables the timeout. An over-budget point is recorded as an
  /// error ("timed out after ...") and its eventual result discarded.
  double point_timeout = 0.0;
  /// Extra attempts for a point whose function throws (0 = fail fast).
  int retries = 0;
};

class SweepRunner {
 public:
  /// \p workers = 0 uses every hardware thread (at least one).
  explicit SweepRunner(std::size_t workers = 0);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Runs fn(items[i]) for every item across the pool; out[i] holds the
  /// result (or the error message) for items[i] regardless of execution
  /// order. Blocks until the whole batch drains (or every remaining point
  /// is past its timeout). Not reentrant: one map() at a time per runner.
  ///
  /// Items and fn are copied into each task, and the output vector is
  /// only written under the done-claiming CAS, so the batch's own state
  /// stays safe when an abandoned (timed-out) point keeps running after
  /// map() returns. What the copies cannot protect is anything fn
  /// *references* (by-reference lambda captures, globals): when using a
  /// point timeout, such state must stay valid until the runner is
  /// destroyed, not just until map() returns.
  template <typename T, typename F>
  auto map(const std::vector<T>& items, F fn, MapOptions options = {})
      -> std::vector<Outcome<std::invoke_result_t<F&, const T&>>> {
    using R = std::invoke_result_t<F&, const T&>;
    std::vector<Outcome<R>> out(items.size());
    auto batch = std::make_shared<BatchState>(items.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      tasks.push_back([this, batch, item = items[i], fn, i, &out, options] {
        SlotState& slot = batch->slots[i];
        slot.started_ns = BatchState::now_ns();
        slot.state.store(SlotState::kRunning, std::memory_order_release);
        for (int attempt = 0;; ++attempt) {
          std::string error;
          std::optional<R> value;
          try {
            value.emplace(fn(item));
          } catch (const std::exception& e) {
            error = e.what();
            if (error.empty()) error = "unknown error";
          } catch (...) {
            error = "unknown exception";
          }
          if (value.has_value()) {
            // Once the slot is claimed, this thread OWNS the accounting:
            // nothing between the CAS and account_one() may escape, or
            // in_flight_ never drains and map() hangs.
            if (claim_done(slot)) {
              try {
                out[i].value = std::move(value);
              } catch (...) {
                // Throwing result move: record a short (SSO, non-
                // allocating) error so the outcome is not silently empty.
                out[i].value.reset();
                out[i].error.assign("result move threw");
              }
              account_one();
            } else {
              wedged_.fetch_sub(1, std::memory_order_acq_rel);
            }
            return;
          }
          const bool abandoned =
              slot.state.load(std::memory_order_acquire) ==
              SlotState::kAbandoned;
          if (attempt < options.retries && !abandoned) continue;
          if (claim_done(slot)) {
            try {
              out[i].error =
                  attempt > 0
                      ? "failed after " + std::to_string(attempt + 1) +
                            " attempts: " + error
                      : error;
            } catch (...) {
              out[i].error.assign("error oom");  // SSO: cannot throw
            }
            account_one();
          } else {
            wedged_.fetch_sub(1, std::memory_order_acq_rel);
          }
          return;
        }
      });
    }
    run_batch(std::move(tasks), *batch, options);
    for (const auto& [index, elapsed] : batch->abandoned) {
      out[index].error = "timed out after " + format_seconds(elapsed) +
                         " (still running, result discarded)";
    }
    return out;
  }

  /// SweepSpec convenience: fn(point) over spec.points().
  template <typename F>
  auto run(const SweepSpec& spec, F fn, MapOptions options = {}) {
    return map(spec.points(), std::move(fn), options);
  }

 private:
  struct SlotState {
    static constexpr std::uint8_t kPending = 0;
    static constexpr std::uint8_t kRunning = 1;
    static constexpr std::uint8_t kDone = 2;
    static constexpr std::uint8_t kAbandoned = 3;
    std::atomic<std::uint8_t> state{kPending};
    /// steady_clock nanos at first attempt; published by the release store
    /// of kRunning, read by the watchdog after an acquire load.
    std::int64_t started_ns = 0;
  };

  struct BatchState {
    explicit BatchState(std::size_t n) : slots(n) {}
    static std::int64_t now_ns() {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    }
    std::vector<SlotState> slots;
    /// (index, elapsed seconds) of timed-out points; written by the
    /// watchdog (the map() caller thread) only.
    std::vector<std::pair<std::size_t, double>> abandoned;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// CAS kRunning -> kDone; losing means the watchdog abandoned the slot
  /// and this thread must discard its result and not account.
  static bool claim_done(SlotState& slot) {
    std::uint8_t expected = SlotState::kRunning;
    return slot.state.compare_exchange_strong(expected, SlotState::kDone,
                                              std::memory_order_acq_rel);
  }

  /// "0.1s"-style rendering so sub-second timeouts do not read as "0s".
  static std::string format_seconds(double seconds);

  void run_batch(std::vector<std::function<void()>> tasks,
                 BatchState& batch, const MapOptions& options);
  void account_one();
  void worker_loop(std::size_t self);
  void replacement_loop(std::atomic<bool>& retired);
  bool try_pop_or_steal(std::size_t self, std::function<void()>& task);
  void spawn_replacement();
  void reap_retired_replacements();

  /// A replacement worker plus a flag it raises when it retires, so
  /// between-batch reaping can join exactly the threads that have
  /// finished and never block on one still wedged in an abandoned point.
  struct Replacement {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> retired;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  /// Temporary workers spawned when a timed-out point wedges a regular
  /// worker; they drain the current queues and retire.
  std::vector<Replacement> replacements_;

  std::mutex mu_;                 // guards the two condvars' predicates
  std::condition_variable work_cv_;   // workers: tasks available / shutdown
  std::condition_variable done_cv_;   // caller: batch drained
  std::atomic<std::size_t> unclaimed_{0};  // queued, not yet popped
  std::atomic<std::size_t> in_flight_{0};  // queued or running, unaccounted
  /// Workers (regular or replacement) currently stuck inside an abandoned
  /// point; the next batch spawns this many replacements up front so a
  /// wedged worker from a previous batch cannot starve it.
  std::atomic<std::size_t> wedged_{0};
  bool shutdown_ = false;

  std::mutex batch_mu_;  // serializes concurrent run_batch callers
};

}  // namespace ssdtrain::sweep
