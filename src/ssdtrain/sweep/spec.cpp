#include "ssdtrain/sweep/spec.hpp"

#include <sstream>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::sweep {

std::string to_string(const AxisValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    std::ostringstream out;
    out << *d;  // shortest round-ish representation, no trailing zeros
    return out.str();
  }
  return std::get<std::string>(value);
}

const AxisValue& SweepPoint::value(std::string_view axis) const {
  for (const auto& [name, v] : coordinates_) {
    if (name == axis) return v;
  }
  util::check(false, "sweep point has no axis named '" + std::string(axis) +
                         "' (point: " + label() + ")");
  return coordinates_.front().second;  // unreachable
}

std::int64_t SweepPoint::i64(std::string_view axis) const {
  const AxisValue& v = value(axis);
  const auto* i = std::get_if<std::int64_t>(&v);
  util::check(i != nullptr,
              "axis '" + std::string(axis) + "' is not an integer axis");
  return *i;
}

double SweepPoint::f64(std::string_view axis) const {
  const AxisValue& v = value(axis);
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  const auto* d = std::get_if<double>(&v);
  util::check(d != nullptr,
              "axis '" + std::string(axis) + "' is not a numeric axis");
  return *d;
}

const std::string& SweepPoint::str(std::string_view axis) const {
  const AxisValue& v = value(axis);
  const auto* s = std::get_if<std::string>(&v);
  util::check(s != nullptr,
              "axis '" + std::string(axis) + "' is not a string axis");
  return *s;
}

std::string SweepPoint::label() const {
  std::string out;
  for (const auto& [name, v] : coordinates_) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += sweep::to_string(v);
  }
  return out;
}

SweepSpec& SweepSpec::axis_values(std::string name,
                                  std::vector<AxisValue> values) {
  util::expects(!values.empty(), "sweep axis must have at least one value");
  for (const Axis& existing : axes_) {
    util::expects(existing.name != name, "duplicate sweep axis name");
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<std::int64_t> values) {
  std::vector<AxisValue> cast(values.begin(), values.end());
  return axis_values(std::move(name), std::move(cast));
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<double> values) {
  std::vector<AxisValue> cast(values.begin(), values.end());
  return axis_values(std::move(name), std::move(cast));
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<std::string> values) {
  std::vector<AxisValue> cast;
  cast.reserve(values.size());
  for (auto& v : values) cast.emplace_back(std::move(v));
  return axis_values(std::move(name), std::move(cast));
}

std::vector<std::string> SweepSpec::axis_names() const {
  std::vector<std::string> names;
  names.reserve(axes_.size());
  for (const Axis& a : axes_) names.push_back(a.name);
  return names;
}

std::size_t SweepSpec::size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

std::vector<SweepPoint> SweepSpec::points() const {
  const std::size_t total = size();
  std::vector<SweepPoint> points;
  points.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    std::vector<std::pair<std::string, AxisValue>> coords;
    coords.reserve(axes_.size());
    // Row-major: decompose the index with the last axis varying fastest.
    std::size_t stride = total;
    std::size_t rest = index;
    for (const Axis& a : axes_) {
      stride /= a.values.size();
      const std::size_t pick = rest / stride;
      rest %= stride;
      coords.emplace_back(a.name, a.values[pick]);
    }
    points.emplace_back(index, std::move(coords));
  }
  return points;
}

}  // namespace ssdtrain::sweep
