#pragma once

/// \file spec.hpp
/// Declarative sweep-space description. A SweepSpec is an ordered list of
/// named axes (integers, doubles, or strings); its cartesian product is the
/// set of SweepPoints a SweepRunner shards across worker threads. Points
/// are enumerated row-major with the last-declared axis varying fastest, so
/// point order — and therefore result order and CSV row order — is
/// independent of how the sweep executes.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ssdtrain::sweep {

using AxisValue = std::variant<std::int64_t, double, std::string>;

/// "12288", "0.25", or the string itself — used for labels and CSV cells.
[[nodiscard]] std::string to_string(const AxisValue& value);

/// One cell of the grid: a deterministic index plus named coordinates.
class SweepPoint {
 public:
  SweepPoint(std::size_t index,
             std::vector<std::pair<std::string, AxisValue>> coordinates)
      : index_(index), coordinates_(std::move(coordinates)) {}

  /// Position in the row-major enumeration of the grid.
  [[nodiscard]] std::size_t index() const { return index_; }

  /// Typed coordinate accessors; unknown axis names or mismatched types
  /// are contract violations. f64 also accepts integer axes.
  [[nodiscard]] std::int64_t i64(std::string_view axis) const;
  [[nodiscard]] double f64(std::string_view axis) const;
  [[nodiscard]] const std::string& str(std::string_view axis) const;
  [[nodiscard]] const AxisValue& value(std::string_view axis) const;

  [[nodiscard]] const std::vector<std::pair<std::string, AxisValue>>&
  coordinates() const {
    return coordinates_;
  }

  /// "hidden=12288 batch=16" — for logs, error messages, and CSV.
  [[nodiscard]] std::string label() const;

 private:
  std::size_t index_;
  std::vector<std::pair<std::string, AxisValue>> coordinates_;
};

/// Cartesian grid builder. Axes enumerate in declaration order; the last
/// axis varies fastest.
class SweepSpec {
 public:
  SweepSpec& axis(std::string name, std::vector<std::int64_t> values);
  SweepSpec& axis(std::string name, std::vector<double> values);
  SweepSpec& axis(std::string name, std::vector<std::string> values);
  SweepSpec& axis_values(std::string name, std::vector<AxisValue> values);

  [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }
  [[nodiscard]] std::vector<std::string> axis_names() const;

  /// Number of points in the grid (0 for an empty spec).
  [[nodiscard]] std::size_t size() const;

  /// Materializes the grid in row-major order.
  [[nodiscard]] std::vector<SweepPoint> points() const;

 private:
  struct Axis {
    std::string name;
    std::vector<AxisValue> values;
  };
  std::vector<Axis> axes_;
};

}  // namespace ssdtrain::sweep
