#pragma once

/// \file dtype.hpp
/// Element types for simulated tensors. Contents are never materialised —
/// only sizes matter — but dtype is tracked so activation byte counts match
/// the paper's FP16 setting (and dropout masks are 1 byte/element, which is
/// where the odd "1 * s*b*h" terms in the activation-memory formula come
/// from).

#include <cstdint>
#include <string_view>

#include "ssdtrain/util/units.hpp"

namespace ssdtrain::tensor {

enum class DType : std::uint8_t { fp16, bf16, fp32, int8, int32, int64 };

constexpr util::Bytes element_size(DType dtype) {
  switch (dtype) {
    case DType::fp16:
    case DType::bf16:
      return 2;
    case DType::fp32:
    case DType::int32:
      return 4;
    case DType::int8:
      return 1;
    case DType::int64:
      return 8;
  }
  return 0;
}

std::string_view to_string(DType dtype);

}  // namespace ssdtrain::tensor
