#include "ssdtrain/tensor/shape.hpp"

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::tensor {

TensorShape::TensorShape(std::initializer_list<std::int64_t> dims) {
  util::expects(dims.size() <= kMaxRank, "rank exceeds TensorShape::kMaxRank");
  for (auto d : dims) {
    util::expects(d >= 0, "negative dimension");
    dims_[rank_++] = d;
  }
}

TensorShape::TensorShape(const std::vector<std::int64_t>& dims) {
  util::expects(dims.size() <= kMaxRank, "rank exceeds TensorShape::kMaxRank");
  for (auto d : dims) {
    util::expects(d >= 0, "negative dimension");
    dims_[rank_++] = d;
  }
}

std::int64_t TensorShape::dim(std::size_t i) const {
  util::expects(i < rank_, "dimension index out of range");
  return dims_[i];
}

std::int64_t TensorShape::numel() const {
  std::int64_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

TensorShape TensorShape::transposed() const {
  util::expects(rank_ >= 2, "transpose needs rank >= 2");
  TensorShape out = *this;
  std::swap(out.dims_[rank_ - 1], out.dims_[rank_ - 2]);
  return out;
}

std::uint64_t TensorShape::hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (std::size_t i = 0; i < rank_; ++i) {
    auto x = static_cast<std::uint64_t>(dims_[i]);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (x >> (byte * 8)) & 0xFF;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

std::string TensorShape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace ssdtrain::tensor
