#include "ssdtrain/tensor/shape.hpp"

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::tensor {

TensorShape::TensorShape(std::initializer_list<std::int64_t> dims)
    : dims_(dims) {
  for (auto d : dims_) util::expects(d >= 0, "negative dimension");
}

TensorShape::TensorShape(std::vector<std::int64_t> dims)
    : dims_(std::move(dims)) {
  for (auto d : dims_) util::expects(d >= 0, "negative dimension");
}

std::int64_t TensorShape::dim(std::size_t i) const {
  util::expects(i < dims_.size(), "dimension index out of range");
  return dims_[i];
}

std::int64_t TensorShape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

TensorShape TensorShape::transposed() const {
  util::expects(dims_.size() >= 2, "transpose needs rank >= 2");
  auto dims = dims_;
  std::swap(dims[dims.size() - 1], dims[dims.size() - 2]);
  return TensorShape(std::move(dims));
}

std::uint64_t TensorShape::hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (auto d : dims_) {
    auto x = static_cast<std::uint64_t>(d);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (x >> (byte * 8)) & 0xFF;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

std::string TensorShape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace ssdtrain::tensor
