#pragma once

/// \file shape.hpp
/// Tensor shapes. get_id() keys on (first-seen stamp, shape), so shapes need
/// cheap equality and a stable hash. Dimensions live in a small inline
/// array (every activation in the model is rank <= 4): copying a shape —
/// which happens on every tensor creation, weak-reference, and replay-
/// program entry — is a trivial memcpy and never touches the heap.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace ssdtrain::tensor {

class TensorShape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  TensorShape() = default;
  TensorShape(std::initializer_list<std::int64_t> dims);
  explicit TensorShape(const std::vector<std::int64_t>& dims);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::int64_t dim(std::size_t i) const;
  [[nodiscard]] std::span<const std::int64_t> dims() const {
    return {dims_.data(), rank_};
  }

  /// Product of dimensions (1 for rank-0 scalars).
  [[nodiscard]] std::int64_t numel() const;

  /// Shape with the last two dimensions swapped (weight transpose views).
  [[nodiscard]] TensorShape transposed() const;

  /// FNV-1a over the dimensions; part of the TensorId key.
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] std::string to_string() const;  ///< "[16, 1024, 12288]"

  friend bool operator==(const TensorShape& a, const TensorShape& b) {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::uint8_t rank_ = 0;
};

}  // namespace ssdtrain::tensor
