#pragma once

/// \file shape.hpp
/// Tensor shapes. get_id() keys on (first-seen stamp, shape), so shapes need
/// cheap equality and a stable hash.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ssdtrain::tensor {

class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<std::int64_t> dims);
  explicit TensorShape(std::vector<std::int64_t> dims);

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  [[nodiscard]] std::int64_t dim(std::size_t i) const;
  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Product of dimensions (1 for rank-0 scalars).
  [[nodiscard]] std::int64_t numel() const;

  /// Shape with the last two dimensions swapped (weight transpose views).
  [[nodiscard]] TensorShape transposed() const;

  /// FNV-1a over the dimensions; part of the TensorId key.
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] std::string to_string() const;  ///< "[16, 1024, 12288]"

  friend bool operator==(const TensorShape& a, const TensorShape& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace ssdtrain::tensor
