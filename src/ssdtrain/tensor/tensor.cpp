#include "ssdtrain/tensor/tensor.hpp"

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::tensor {

std::string_view to_string(Device device) {
  switch (device) {
    case Device::cuda:
      return "cuda";
    case Device::cpu:
      return "cpu";
  }
  return "?";
}

std::string_view to_string(DType dtype) {
  switch (dtype) {
    case DType::fp16:
      return "fp16";
    case DType::bf16:
      return "bf16";
    case DType::fp32:
      return "fp32";
    case DType::int8:
      return "int8";
    case DType::int32:
      return "int32";
    case DType::int64:
      return "int64";
  }
  return "?";
}

Storage::Storage(hw::DeviceAllocator& allocator,
                 hw::DeviceAllocation allocation)
    : allocator_(&allocator),
      allocation_(allocation),
      bytes_(allocation.bytes),
      device_(Device::cuda) {}

Storage::Storage(util::Bytes bytes) : bytes_(bytes), device_(Device::cpu) {
  util::expects(bytes >= 0, "negative storage size");
}

Storage::~Storage() {
  if (allocator_ != nullptr) {
    allocator_->free(allocation_);
  }
}

Tensor::Tensor(util::Label label, TensorShape shape, DType dtype,
               std::shared_ptr<Storage> storage)
    : impl_(std::make_shared<Impl>(Impl{label, shape, dtype,
                                        std::move(storage)})) {
  util::expects(impl_->storage != nullptr, "tensor needs storage");
}

const util::Label& Tensor::label() const {
  util::expects(defined(), "undefined tensor");
  return impl_->label;
}

const TensorShape& Tensor::shape() const {
  util::expects(defined(), "undefined tensor");
  return impl_->shape;
}

DType Tensor::dtype() const {
  util::expects(defined(), "undefined tensor");
  return impl_->dtype;
}

Device Tensor::device() const {
  util::expects(defined(), "undefined tensor");
  return impl_->storage->device();
}

std::int64_t Tensor::numel() const { return shape().numel(); }

util::Bytes Tensor::bytes() const {
  return numel() * element_size(dtype());
}

const std::shared_ptr<Storage>& Tensor::storage() const {
  util::expects(defined(), "undefined tensor");
  return impl_->storage;
}

Tensor Tensor::transpose_view() const {
  util::expects(defined(), "undefined tensor");
  return Tensor(util::Label::suffixed(impl_->label, ".T"),
                impl_->shape.transposed(), impl_->dtype, impl_->storage);
}

bool same_storage(const Tensor& a, const Tensor& b) {
  return a.defined() && b.defined() && a.impl_->storage == b.impl_->storage;
}

WeakTensor::WeakTensor(const Tensor& tensor) {
  util::expects(tensor.defined(), "cannot weak-reference undefined tensor");
  label_ = tensor.label();
  shape_ = tensor.shape();
  dtype_ = tensor.dtype();
  storage_ = tensor.storage();
}

Tensor WeakTensor::lock() const {
  auto storage = storage_.lock();
  if (!storage) return {};
  return Tensor(label_, shape_, dtype_, std::move(storage));
}

bool WeakTensor::expired() const { return storage_.expired(); }

TensorFactory::TensorFactory(hw::DeviceAllocator& allocator)
    : allocator_(allocator), pool_(util::SlabPool::create()) {}

Tensor TensorFactory::cuda(util::Label label, TensorShape shape, DType dtype,
                           hw::MemoryTag tag) {
  const util::Bytes bytes = shape.numel() * element_size(dtype);
  util::expects(bytes > 0, "empty device tensor");
  auto allocation = allocator_.allocate(bytes, tag);
  auto storage = std::allocate_shared<Storage>(
      util::PoolAllocator<Storage>(pool_), allocator_, allocation);
  return Tensor(std::allocate_shared<Tensor::Impl>(
      util::PoolAllocator<Tensor::Impl>(pool_),
      Tensor::Impl{label, shape, dtype, std::move(storage)}));
}

Tensor TensorFactory::cpu(util::Label label, TensorShape shape, DType dtype) {
  const util::Bytes bytes = shape.numel() * element_size(dtype);
  auto storage = std::allocate_shared<Storage>(
      util::PoolAllocator<Storage>(pool_), bytes);
  return Tensor(std::allocate_shared<Tensor::Impl>(
      util::PoolAllocator<Tensor::Impl>(pool_),
      Tensor::Impl{label, shape, dtype, std::move(storage)}));
}

}  // namespace ssdtrain::tensor
