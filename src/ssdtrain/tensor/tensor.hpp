#pragma once

/// \file tensor.hpp
/// Simulated tensors. A Tensor is a cheap value handle (shared_ptr) to a
/// TensorImpl; several Tensor objects can view one underlying Storage, just
/// as torch.Tensor objects share an untyped_storage(). Storage owns the
/// (simulated) device memory and frees it on destruction — the C++ analogue
/// of Python garbage collection reclaiming an activation once the tensor
/// cache drops its reference (paper §III-B).
///
/// Names are interned util::Label ids, not std::string: creating a tensor
/// never materialises text (only observers, tracers, and error paths call
/// Label::str()). Factory-made tensors draw their Impl and Storage blocks
/// from the factory's SlabPool, so the step-replay hot path creates and
/// destroys tensors without touching malloc at steady state.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "ssdtrain/hw/device_allocator.hpp"
#include "ssdtrain/sim/completion.hpp"
#include "ssdtrain/tensor/dtype.hpp"
#include "ssdtrain/tensor/shape.hpp"
#include "ssdtrain/util/label.hpp"
#include "ssdtrain/util/pool.hpp"

namespace ssdtrain::tensor {

enum class Device : std::uint8_t { cuda, cpu };

std::string_view to_string(Device device);

/// Refcounted backing store. Holds the device allocation (if on CUDA) and
/// the get_id() stamp attribute the tensor cache attaches on first sight.
class Storage {
 public:
  /// Device storage: takes ownership of a live allocation.
  Storage(hw::DeviceAllocator& allocator, hw::DeviceAllocation allocation);

  /// CPU storage (host heap; not tracked by the device allocator).
  explicit Storage(util::Bytes bytes);

  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  [[nodiscard]] util::Bytes bytes() const { return bytes_; }
  [[nodiscard]] Device device() const { return device_; }

  /// Device-allocator id of the backing allocation (0 for CPU storage).
  /// The step recorder keys its free observations on this.
  [[nodiscard]] std::uint64_t allocation_id() const {
    return allocation_.id;
  }

  /// get_id() attribute: logical timestamp from first processing (the paper
  /// attaches a wall-clock timestamp to t.untyped_storage(); a logical
  /// counter gives the same uniqueness deterministically).
  [[nodiscard]] std::optional<std::uint64_t> id_stamp() const {
    return id_stamp_;
  }
  void set_id_stamp(std::uint64_t stamp) { id_stamp_ = stamp; }

  /// Completion of the kernel that produces this tensor's contents. Offload
  /// stores wait on it (paper: "offloading of an activation starts once the
  /// operator producing it finishes"); consumers of reloaded tensors wait on
  /// the load completion installed here by the offloader. May be null for
  /// tensors with no producer (host inputs, weights) — treat as ready.
  [[nodiscard]] const sim::CompletionPtr& ready_event() const {
    return ready_event_;
  }
  void set_ready_event(sim::CompletionPtr event) {
    ready_event_ = std::move(event);
  }

 private:
  hw::DeviceAllocator* allocator_ = nullptr;  // null for CPU storage
  hw::DeviceAllocation allocation_;
  util::Bytes bytes_ = 0;
  Device device_ = Device::cpu;
  std::optional<std::uint64_t> id_stamp_;
  sim::CompletionPtr ready_event_;
};

class Tensor {
 public:
  Tensor() = default;  ///< undefined tensor (like a default torch.Tensor)

  Tensor(util::Label label, TensorShape shape, DType dtype,
         std::shared_ptr<Storage> storage);

  [[nodiscard]] bool defined() const { return impl_ != nullptr; }
  [[nodiscard]] const util::Label& label() const;
  [[nodiscard]] const TensorShape& shape() const;
  [[nodiscard]] DType dtype() const;
  [[nodiscard]] Device device() const;
  [[nodiscard]] bool is_cpu() const { return device() == Device::cpu; }
  [[nodiscard]] std::int64_t numel() const;
  [[nodiscard]] util::Bytes bytes() const;

  [[nodiscard]] const std::shared_ptr<Storage>& storage() const;

  /// View with the last two dims swapped; shares the storage (this is how
  /// linear layers register W^T for backward — same stamp, new shape).
  [[nodiscard]] Tensor transpose_view() const;

  /// Number of Tensor handles sharing this impl (diagnostics/tests).
  [[nodiscard]] long use_count() const {
    return impl_ ? impl_.use_count() : 0;
  }

  /// Releases this handle (the tensor becomes undefined).
  void reset() { impl_.reset(); }

  friend bool same_impl(const Tensor& a, const Tensor& b) {
    return a.impl_ == b.impl_;
  }
  friend bool same_storage(const Tensor& a, const Tensor& b);

 private:
  friend class TensorFactory;

  struct Impl {
    util::Label label;
    TensorShape shape;
    DType dtype = DType::fp16;
    std::shared_ptr<Storage> storage;
  };

  explicit Tensor(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<Impl> impl_;
};

/// Weak handle used by the tensor cache for data forwarding: while a store
/// is in flight the cache must not extend the tensor's lifetime, but must
/// be able to recover a strong reference if backward arrives early.
class WeakTensor {
 public:
  WeakTensor() = default;
  explicit WeakTensor(const Tensor& tensor);

  /// Recovers a strong handle if the tensor is still alive.
  [[nodiscard]] Tensor lock() const;
  [[nodiscard]] bool expired() const;

 private:
  // Rebuilding a Tensor from the weak storage reference requires the
  // original metadata; keep a copy (cheap: interned label + inline dims).
  util::Label label_;
  TensorShape shape_;
  DType dtype_ = DType::fp16;
  std::weak_ptr<Storage> storage_;
};

/// Creates tensors against a device allocator with proper tagging. Impl and
/// Storage blocks come from the factory's own SlabPool (allocate_shared
/// with a PoolAllocator), so steady-state tensor creation on the replay
/// path is heap-free; the pool's orphan contract keeps blocks valid for
/// tensors that outlive the factory.
class TensorFactory {
 public:
  explicit TensorFactory(hw::DeviceAllocator& allocator);

  /// Device tensor; memory is charged to \p tag immediately (like
  /// torch.empty on CUDA).
  Tensor cuda(util::Label label, TensorShape shape, DType dtype,
              hw::MemoryTag tag);

  /// Host tensor (inputs, small metadata).
  Tensor cpu(util::Label label, TensorShape shape, DType dtype);

  [[nodiscard]] hw::DeviceAllocator& allocator() { return allocator_; }

  /// The pool backing this factory's tensors (diagnostics/tests).
  [[nodiscard]] const util::SlabPool::Handle& pool() const { return pool_; }

 private:
  hw::DeviceAllocator& allocator_;
  util::SlabPool::Handle pool_;
};

}  // namespace ssdtrain::tensor
