#include "ssdtrain/tensor/tensor_id.hpp"

#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/label.hpp"

namespace ssdtrain::tensor {

std::string TensorId::to_string() const {
  // Single source of truth with util::Label's tagged rendering, so offload
  // flow labels ("store:t000042-...") and tensor-id strings always agree.
  return util::format_tensor_tag(stamp, shape_key);
}

TensorId IdAssigner::get_id(const Tensor& tensor) {
  util::expects(tensor.defined(), "get_id of undefined tensor");
  auto& storage = *tensor.storage();
  if (!storage.id_stamp().has_value()) {
    storage.set_id_stamp(next_stamp_++);
  }
  return TensorId{*storage.id_stamp(), tensor.shape().hash()};
}

bool IdAssigner::is_stamped(const Tensor& tensor) {
  util::expects(tensor.defined(), "is_stamped of undefined tensor");
  return tensor.storage()->id_stamp().has_value();
}

}  // namespace ssdtrain::tensor
