#include "ssdtrain/tensor/tensor_id.hpp"

#include <cstdio>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::tensor {

std::string TensorId::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t%06llu-%016llx",
                static_cast<unsigned long long>(stamp),
                static_cast<unsigned long long>(shape_key));
  return buf;
}

TensorId IdAssigner::get_id(const Tensor& tensor) {
  util::expects(tensor.defined(), "get_id of undefined tensor");
  auto& storage = *tensor.storage();
  if (!storage.id_stamp().has_value()) {
    storage.set_id_stamp(next_stamp_++);
  }
  return TensorId{*storage.id_stamp(), tensor.shape().hash()};
}

bool IdAssigner::is_stamped(const Tensor& tensor) {
  util::expects(tensor.defined(), "is_stamped of undefined tensor");
  return tensor.storage()->id_stamp().has_value();
}

}  // namespace ssdtrain::tensor
