#pragma once

/// \file tensor_id.hpp
/// The paper's get_id() scheme (§III-C1). PyTorch's native id() is the GPU
/// memory address, which gets recycled once an offloaded activation is
/// garbage-collected — causing identifier collisions. get_id() instead
/// combines a timestamp taken when the tensor is first processed with the
/// tensor's shape, and attaches the timestamp to the *underlying storage*
/// (not the Tensor object) so that distinct torch.Tensor views of the same
/// data — notably a linear layer's weight and its transpose — deduplicate
/// consistently across steps.

#include <cstdint>
#include <string>

#include "ssdtrain/tensor/tensor.hpp"

namespace ssdtrain::tensor {

struct TensorId {
  std::uint64_t stamp = 0;      ///< first-processing logical timestamp
  std::uint64_t shape_key = 0;  ///< hash of the shape at registration

  friend bool operator==(const TensorId&, const TensorId&) = default;
  friend auto operator<=>(const TensorId&, const TensorId&) = default;

  /// Stable file-name-friendly form, e.g. "t000042-9f3a...". Used for the
  /// offload path on the simulated SSD filesystem namespace.
  [[nodiscard]] std::string to_string() const;
};

struct TensorIdHash {
  std::size_t operator()(const TensorId& id) const noexcept {
    return static_cast<std::size_t>(id.stamp * 0x9E3779B97F4A7C15ULL ^
                                    id.shape_key);
  }
};

/// Assigns unique identifiers per the paper's scheme. One instance per
/// tensor cache; the counter is the logical "timestamp".
class IdAssigner {
 public:
  IdAssigner() = default;

  /// Returns the tensor's unique id, stamping its storage on first sight.
  TensorId get_id(const Tensor& tensor);

  /// True if this tensor's storage has been stamped already (i.e. get_id
  /// has processed it or a view sharing its storage before).
  [[nodiscard]] static bool is_stamped(const Tensor& tensor);

 private:
  std::uint64_t next_stamp_ = 1;
};

}  // namespace ssdtrain::tensor
