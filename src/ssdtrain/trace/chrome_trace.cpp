#include "ssdtrain/trace/chrome_trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ssdtrain/fault/fault.hpp"

namespace ssdtrain::trace {

void ChromeTrace::attach_stream(sim::Stream& stream, std::string track) {
  // Attach before enqueuing work: streams only materialise task labels
  // while an observer is installed (lazy-label contract), so tasks queued
  // earlier would trace with empty names.
  stream.set_observer(
      [this, track](const sim::Stream::TaskRecord& record) {
        add_event(TraceEvent{record.label, track, record.start, record.end});
      });
}

void ChromeTrace::add_event(TraceEvent event) {
  events_.push_back(std::move(event));
}

void ChromeTrace::append_fault_events(
    const std::vector<fault::FaultEvent>& log, util::Seconds horizon) {
  static const std::string kTrack = "faults";
  // Pair each begin with the first unmatched end of the same spec text
  // (the log is in time order, and detail round-trips the spec).
  std::vector<char> consumed(log.size(), 0);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const fault::FaultEvent& ev = log[i];
    if (!ev.begin) continue;
    util::Seconds end = horizon;
    for (std::size_t j = i + 1; j < log.size(); ++j) {
      if (consumed[j] == 0 && !log[j].begin && log[j].detail == ev.detail) {
        consumed[j] = 1;
        end = log[j].time;
        break;
      }
    }
    const std::string name = std::string(fault::to_string(ev.kind)) +
                             (ev.gpu >= 0
                                  ? " gpu" + std::to_string(ev.gpu)
                                  : std::string()) +
                             ": " + ev.detail;
    events_.push_back(
        TraceEvent{name, kTrack, ev.time, std::max(end, ev.time)});
  }
}

void ChromeTrace::append_checkpoint_events(
    const std::vector<ckpt::CheckpointEvent>& log) {
  static const std::string kCheckpointTrack = "checkpoint";
  static const std::string kRecoveryTrack = "recovery";
  for (const ckpt::CheckpointEvent& ev : log) {
    const bool write = ev.kind == ckpt::CheckpointEvent::Kind::write;
    events_.push_back(TraceEvent{ev.detail,
                                 write ? kCheckpointTrack : kRecoveryTrack,
                                 ev.start, std::max(ev.end, ev.start)});
  }
}

std::size_t ChromeTrace::track_id(const std::string& track) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == track) return i;
  }
  tracks_.push_back(track);
  return tracks_.size() - 1;
}

std::string ChromeTrace::to_json() const {
  // Build the track table first (const_cast-free: recompute ids locally).
  std::vector<std::string> tracks;
  auto local_track_id = [&tracks](const std::string& track) {
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i] == track) return i;
    }
    tracks.push_back(track);
    return tracks.size() - 1;
  };

  std::ostringstream out;
  out << "[\n";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out << ",\n";
    first = false;
    const std::size_t tid = local_track_id(e.track);
    out << R"(  {"name": ")" << e.name << R"(", "ph": "X", "pid": 0, )"
        << R"("tid": )" << tid << R"(, "ts": )" << e.start * 1e6
        << R"(, "dur": )" << (e.end - e.start) * 1e6 << "}";
  }
  // Thread-name metadata so tracks render with human-readable labels.
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (!first) out << ",\n";
    first = false;
    out << R"(  {"name": "thread_name", "ph": "M", "pid": 0, "tid": )" << i
        << R"(, "args": {"name": ")" << tracks[i] << R"("}})";
  }
  out << "\n]\n";
  return out.str();
}

void ChromeTrace::write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open trace file: " + path);
  file << to_json();
}

}  // namespace ssdtrain::trace
