#pragma once

/// \file chrome_trace.hpp
/// Chrome-trace (about://tracing / Perfetto) JSON export of the simulated
/// timeline: compute kernels per GPU stream plus offload/prefetch I/O jobs.
/// This renders the paper's Fig. 2 for any run — the visual proof that the
/// stores and prefetches hide behind forward/backward compute.

#include <string>
#include <vector>

#include "ssdtrain/ckpt/writer.hpp"
#include "ssdtrain/fault/injector.hpp"
#include "ssdtrain/sim/stream.hpp"
#include "ssdtrain/util/units.hpp"

namespace ssdtrain::trace {

struct TraceEvent {
  std::string name;
  std::string track;  ///< rendered as the thread name
  util::Seconds start = 0.0;
  util::Seconds end = 0.0;
};

class ChromeTrace {
 public:
  /// Subscribes to a stream; every completed task becomes an event on a
  /// track named \p track.
  void attach_stream(sim::Stream& stream, std::string track);

  /// Adds an event directly (e.g. bandwidth flows, pool jobs).
  void add_event(TraceEvent event);

  /// Renders a fault log onto a "faults" track: window begin/end pairs
  /// become slices spanning the window, structural events (dropouts, stage
  /// crashes, recompute fallbacks) become zero-width markers at the instant
  /// they fired. \p horizon caps open-ended windows at the end of the
  /// traced range.
  void append_fault_events(const std::vector<fault::FaultEvent>& log,
                           util::Seconds horizon);

  /// Renders a CheckpointWriter's timeline onto "checkpoint" and
  /// "recovery" tracks: per-GPU shard writes and the commit flip land on
  /// the checkpoint lane, restore spans (and rejected-blob markers) on the
  /// recovery lane.
  void append_checkpoint_events(const std::vector<ckpt::CheckpointEvent>& log);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// Serialises to the Chrome trace-event JSON array format.
  [[nodiscard]] std::string to_json() const;

  /// Writes to a file; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
  std::size_t track_id(const std::string& track);
};

}  // namespace ssdtrain::trace
