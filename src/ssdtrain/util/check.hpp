#pragma once

/// \file check.hpp
/// Lightweight contract checking in the spirit of GSL Expects/Ensures.
/// Violations throw ContractViolation carrying the failing expression text
/// and source location; they are programming errors, not recoverable states.

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ssdtrain::util {

/// Thrown when a precondition, postcondition, or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string_view kind, std::string_view what,
                    const std::source_location& loc)
      : std::logic_error(format(kind, what, loc)) {}

 private:
  static std::string format(std::string_view kind, std::string_view what,
                            const std::source_location& loc) {
    std::string msg;
    msg += kind;
    msg += " failed: ";
    msg += what;
    msg += " at ";
    msg += loc.file_name();
    msg += ":";
    msg += std::to_string(loc.line());
    msg += " (";
    msg += loc.function_name();
    msg += ")";
    return msg;
  }
};

/// Precondition check: call at function entry.
inline void expects(bool condition, std::string_view what = "precondition",
                    const std::source_location loc =
                        std::source_location::current()) {
  if (!condition) throw ContractViolation("Expects", what, loc);
}

/// Postcondition check: call before returning.
inline void ensures(bool condition, std::string_view what = "postcondition",
                    const std::source_location loc =
                        std::source_location::current()) {
  if (!condition) throw ContractViolation("Ensures", what, loc);
}

/// General invariant / internal-consistency check.
inline void check(bool condition, std::string_view what = "invariant",
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!condition) throw ContractViolation("Check", what, loc);
}

/// Marks unreachable code paths.
[[noreturn]] inline void unreachable(
    std::string_view what = "unreachable code",
    const std::source_location loc = std::source_location::current()) {
  throw ContractViolation("Unreachable", what, loc);
}

}  // namespace ssdtrain::util
