#include "ssdtrain/util/csv.hpp"

#include <stdexcept>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::util {

namespace {

bool has_content(const std::string& path) {
  std::ifstream in(path);
  return in.good() && in.peek() != std::ifstream::traits_type::eof();
}

bool ends_with_newline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return true;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.get(last);
  return last == '\n';
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header, bool append)
    : columns_(header.size()) {
  expects(!header.empty(), "CSV needs at least one column");
  const bool resume = append && has_content(path);
  // An interrupted earlier run can leave an unterminated partial row;
  // close it off so appended rows do not merge into it.
  const bool needs_newline = resume && !ends_with_newline(path);
  out_.open(path, resume ? std::ios::out | std::ios::app : std::ios::out);
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  if (needs_newline) out_ << "\n";
  if (!resume) write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  expects(cells.size() == columns_, "CSV row width != header width");
  write_row(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << escape(cells[i]);
  }
  out_ << "\n";
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += "\"";
  return out;
}

}  // namespace ssdtrain::util
