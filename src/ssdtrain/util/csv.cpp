#include "ssdtrain/util/csv.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::util {

namespace {

bool has_content(const std::string& path) {
  std::ifstream in(path);
  return in.good() && in.peek() != std::ifstream::traits_type::eof();
}

bool ends_with_newline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return true;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.get(last);
  return last == '\n';
}

/// Byte length of the longest prefix of the file made of complete
/// ('\n'-terminated) lines; 0 when no line ever finished.
std::size_t complete_prefix_size(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  const std::size_t last = content.find_last_of('\n');
  return last == std::string::npos ? 0 : last + 1;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header, bool append)
    : columns_(header.size()) {
  expects(!header.empty(), "CSV needs at least one column");
  bool resume = append && has_content(path);
  if (resume && !ends_with_newline(path)) {
    // A run killed mid-write can leave an unterminated partial row (which a
    // resume scan must not count as done, and which must not survive into
    // the resumed file — the repaired file has to be byte-identical to a
    // clean run's). Truncate it away; the interrupted point re-runs.
    const std::size_t keep = complete_prefix_size(path);
    std::filesystem::resize_file(path, keep);
    if (keep == 0) resume = false;  // not even the header survived
  }
  out_.open(path, resume ? std::ios::out | std::ios::app : std::ios::out);
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  if (!resume) write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  expects(cells.size() == columns_, "CSV row width != header width");
  write_row(cells);
}

void CsvWriter::flush() {
  if (out_.is_open()) out_.flush();
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << escape(cells[i]);
  }
  out_ << "\n";
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += "\"";
  return out;
}

}  // namespace ssdtrain::util
