#include "ssdtrain/util/csv.hpp"

#include <stdexcept>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  expects(!header.empty(), "CSV needs at least one column");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  expects(cells.size() == columns_, "CSV row width != header width");
  write_row(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << escape(cells[i]);
  }
  out_ << "\n";
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += "\"";
  return out;
}

}  // namespace ssdtrain::util
