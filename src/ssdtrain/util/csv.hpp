#pragma once

/// \file csv.hpp
/// Minimal CSV writer: benches optionally dump their series as CSV so the
/// figures can be re-plotted outside the harness.

#include <fstream>
#include <string>
#include <vector>

namespace ssdtrain::util {

/// Writes rows of cells to a CSV file. Cells containing commas, quotes, or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens \p path for writing and emits the header row. With \p append
  /// set and \p path already holding rows, new rows are appended instead
  /// and the header is not repeated (resumable sweeps).
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header,
            bool append = false);

  void add_row(const std::vector<std::string>& cells);

  /// Pushes buffered rows to the OS so they survive the process dying
  /// (streamed progress commits flush after every row; batch writers can
  /// keep relying on close()).
  void flush();

  /// Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = delete;
  CsvWriter& operator=(CsvWriter&&) = delete;

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace ssdtrain::util
