#include "ssdtrain/util/label.hpp"

#include <cstdio>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace ssdtrain::util {

namespace {

/// Sharded string intern table. Ids encode (shard, index) so a Label can
/// find its home shard without a global lock; the per-shard deque never
/// invalidates element references, so rendered string_views stay stable
/// for the process lifetime.
constexpr std::uint32_t kShardBits = 4;
constexpr std::uint32_t kShards = 1u << kShardBits;

struct Shard {
  std::mutex mu;
  std::unordered_map<std::string_view, std::uint32_t> ids;
  std::deque<std::string> strings;
};

Shard& shard_table(std::uint32_t index) {
  static Shard shards[kShards];
  return shards[index];
}

std::uint32_t intern(std::string_view text) {
  const std::uint32_t shard_index =
      static_cast<std::uint32_t>(std::hash<std::string_view>{}(text)) &
      (kShards - 1);
  Shard& shard = shard_table(shard_index);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto it = shard.ids.find(text); it != shard.ids.end()) {
    return it->second;
  }
  // Indices are offset by one so id 0 stays "no text" (empty prefixes).
  shard.strings.emplace_back(text);
  const std::uint32_t id =
      (static_cast<std::uint32_t>(shard.strings.size()) << kShardBits) |
      shard_index;
  // Key views into the deque-owned string: stable for process lifetime.
  shard.ids.emplace(shard.strings.back(), id);
  return id;
}

std::string interned_text(std::uint32_t id) {
  if (id == 0) return {};
  Shard& shard = shard_table(id & (kShards - 1));
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.strings[(id >> kShardBits) - 1];
}

}  // namespace

std::string format_tensor_tag(std::uint64_t stamp, std::uint64_t shape_key) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t%06llu-%016llx",
                static_cast<unsigned long long>(stamp),
                static_cast<unsigned long long>(shape_key));
  return buf;
}

Label::Label(const char* text)
    : Label(text == nullptr ? std::string_view{} : std::string_view{text}) {}

Label::Label(std::string_view text) {
  if (text.empty()) return;
  kind_ = Kind::plain;
  id_ = intern(text);
}

Label::Label(const std::string& text) : Label(std::string_view{text}) {}

Label Label::tagged(Label prefix, std::uint64_t stamp,
                    std::uint64_t shape_key) {
  Label out;
  out.kind_ = Kind::tagged;
  out.id_ = prefix.id_;
  out.tag_stamp_ = stamp;
  out.tag_key_ = shape_key;
  return out;
}

Label Label::suffixed(Label base, const char* literal_suffix) {
  Label out;
  out.kind_ = Kind::suffixed;
  out.id_ = base.id_;
  out.text_ = literal_suffix;
  return out;
}

Label Label::view(std::string_view text) {
  if (text.empty()) return {};
  Label out;
  out.kind_ = Kind::view;
  out.text_ = text.data();
  out.tag_stamp_ = text.size();
  return out;
}

std::string Label::str() const {
  switch (kind_) {
    case Kind::empty:
      return {};
    case Kind::plain:
      return interned_text(id_);
    case Kind::tagged: {
      std::string out = interned_text(id_);
      out += ':';
      out += format_tensor_tag(tag_stamp_, tag_key_);
      return out;
    }
    case Kind::suffixed: {
      std::string out = interned_text(id_);
      if (text_ != nullptr) out += text_;
      return out;
    }
    case Kind::view:
      return std::string(text_, static_cast<std::size_t>(tag_stamp_));
  }
  return {};
}

}  // namespace ssdtrain::util
