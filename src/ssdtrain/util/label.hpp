#pragma once

/// \file label.hpp
/// Tiny prefix+number label builder: label("B", 16) -> "B16".
///
/// Exists because the obvious spelling, `"B" + std::to_string(16)`, selects
/// the `operator+(const char*, std::string&&)` overload whose inlined
/// memcpy GCC 12 misdiagnoses under -O3 -Werror=restrict (GCC PR 105651).
/// Appending to an lvalue sidesteps the false positive, so every
/// "letter + count" label in the repo routes through here.

#include <cstdint>
#include <string>
#include <string_view>

namespace ssdtrain::util {

inline std::string label(std::string_view prefix, std::int64_t value) {
  std::string out(prefix);
  out += std::to_string(value);
  return out;
}

}  // namespace ssdtrain::util
