#pragma once

/// \file label.hpp
/// Cheap task/flow/completion naming for the event core.
///
/// `label(prefix, n)` — tiny prefix+number string builder: label("B", 16)
/// -> "B16". Exists because the obvious spelling,
/// `"B" + std::to_string(16)`, selects the
/// `operator+(const char*, std::string&&)` overload whose inlined memcpy
/// GCC 12 misdiagnoses under -O3 -Werror=restrict (GCC PR 105651).
/// Appending to an lvalue sidesteps the false positive, so every
/// "letter + count" label in the repo routes through here.
///
/// `Label` — a 32-byte interned label id. The event core (completions,
/// bandwidth flows, thread-pool jobs) names everything with Labels instead
/// of std::string so the hot path never materialises text: a Label is an
/// id into a global intern table (plus optional structured payload) and
/// only renders to std::string when an observer, tracer, or error message
/// asks via str(). Three shapes cover every call site:
///
///   * plain     — interned text ("gpu0.compute"). Interning allocates
///                 once per *unique* string process-wide, so labels must
///                 be drawn from a bounded set (module/stream names, not
///                 per-step serial numbers).
///   * tagged    — interned prefix + a 128-bit tensor tag, rendered as
///                 "prefix:t000042-9f3a..." exactly like
///                 tensor::TensorId::to_string(). Unbounded tensor ids
///                 ride in the payload, not the intern table.
///   * suffixed  — interned base + a string-literal suffix
///                 ("h.out" + ".reload"). The literal is stored by
///                 pointer, so it must have static storage duration.
///   * view      — non-owning pointer+length over caller-owned text, for
///                 pass-down-and-render-now plumbing (e.g. the tensor
///                 cache handing a scratch reload name to Offloader::load,
///                 which renders it before returning). Never retain a
///                 view Label beyond the source string's lifetime.
///
/// The intern table is sharded and mutex-protected: sweep workers intern
/// concurrently, and renders (cold path) lock only the owning shard.

#include <cstdint>
#include <string>
#include <string_view>

namespace ssdtrain::util {

inline std::string label(std::string_view prefix, std::int64_t value) {
  std::string out(prefix);
  out += std::to_string(value);
  return out;
}

/// Renders the canonical tensor-id tag, e.g. "t000042-00000000deadbeef".
/// Shared with tensor::TensorId::to_string so traces and offload labels
/// agree on the format.
std::string format_tensor_tag(std::uint64_t stamp, std::uint64_t shape_key);

class Label {
 public:
  constexpr Label() = default;

  /// Interns \p text (empty or null yields the empty label).
  Label(const char* text);             // NOLINT(google-explicit-constructor)
  Label(std::string_view text);        // NOLINT(google-explicit-constructor)
  Label(const std::string& text);      // NOLINT(google-explicit-constructor)

  /// prefix + ":" + tensor tag, with the 128-bit tag carried inline so
  /// per-tensor labels never grow the intern table.
  [[nodiscard]] static Label tagged(Label prefix, std::uint64_t stamp,
                                    std::uint64_t shape_key);

  /// base + literal suffix (e.g. ".reload"). \p literal_suffix must have
  /// static storage duration; only the pointer is kept.
  [[nodiscard]] static Label suffixed(Label base, const char* literal_suffix);

  /// Non-owning label over caller-owned text; valid only while that text
  /// lives. For immediate-render plumbing, never for retention.
  [[nodiscard]] static Label view(std::string_view text);

  [[nodiscard]] bool empty() const { return kind_ == Kind::empty; }

  /// Renders the label text (allocates; "" for the empty label). Cold
  /// path by contract: only observers, tracers, and error messages call
  /// this.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Label&, const Label&) = default;

 private:
  enum class Kind : std::uint8_t { empty, plain, tagged, suffixed, view };

  Kind kind_ = Kind::empty;
  std::uint32_t id_ = 0;            ///< intern id of text / prefix / base
  const char* text_ = nullptr;      ///< suffix (suffixed) or data (view)
  std::uint64_t tag_stamp_ = 0;     ///< tag payload (tagged), length (view)
  std::uint64_t tag_key_ = 0;       ///< Kind::tagged only
};

}  // namespace ssdtrain::util
