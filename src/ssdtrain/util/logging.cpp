#include "ssdtrain/util/logging.hpp"

#include <atomic>

namespace ssdtrain::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warning};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "debug";
    case LogLevel::info:
      return "info";
    case LogLevel::warning:
      return "warning";
    case LogLevel::error:
      return "error";
    case LogLevel::off:
      return "off";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace ssdtrain::util
