#pragma once

/// \file logging.hpp
/// Small leveled logger. Off by default at debug level so simulations stay
/// quiet; benches and examples raise the level when narrating runs.

#include <iostream>
#include <sstream>
#include <string>

namespace ssdtrain::util {

enum class LogLevel { debug = 0, info = 1, warning = 2, error = 3, off = 4 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one log line ("[level] message") to stderr if enabled.
void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::debug, m); }
inline void log_info(const std::string& m) { log(LogLevel::info, m); }
inline void log_warning(const std::string& m) { log(LogLevel::warning, m); }
inline void log_error(const std::string& m) { log(LogLevel::error, m); }

}  // namespace ssdtrain::util
