#include "ssdtrain/util/pool.hpp"

namespace ssdtrain::util {

void SlabPool::reap() { delete this; }

}  // namespace ssdtrain::util
