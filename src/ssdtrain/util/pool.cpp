#include "ssdtrain/util/pool.hpp"

namespace ssdtrain::util {

void SlabPool::reap() { delete this; }

void SlabPool::on_handles_gone() {
  if (live_ == 0) {
    delete this;
  } else {
    orphaned_ = true;
  }
}

}  // namespace ssdtrain::util
