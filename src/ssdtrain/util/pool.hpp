#pragma once

/// \file pool.hpp
/// Size-class slab pool for the discrete-event core's per-Simulator
/// allocations (completion objects, intrusive waiter nodes). Blocks are
/// carved from multi-kilobyte chunks and recycled through per-class free
/// lists, so at steady state — once the simulation's high-water mark of
/// live completions/waiters has been reached — allocation and release
/// never touch malloc.
///
/// Not thread-safe by design: each Simulator (and therefore each sweep
/// point) owns its own pool, which is exactly the isolation the parallel
/// sweep runner already guarantees. Ownership is shared through
/// SlabPool::Handle, an intrusive smart pointer with a *plain* (non-
/// atomic) count — objects allocated from the pool (e.g. completions held
/// by tensors) keep the backing chunks alive through teardown without any
/// atomic traffic on the event hot path.

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::util {

class SlabPool {
 public:
  /// Intrusive non-atomic shared handle; see file comment for the
  /// single-threaded ownership contract.
  class Handle {
   public:
    Handle() noexcept = default;
    Handle(const Handle& other) noexcept : pool_(other.pool_) {
      if (pool_ != nullptr) ++pool_->refs_;
    }
    Handle(Handle&& other) noexcept : pool_(other.pool_) {
      other.pool_ = nullptr;
    }
    Handle& operator=(const Handle& other) noexcept {
      Handle(other).swap(*this);
      return *this;
    }
    Handle& operator=(Handle&& other) noexcept {
      Handle(std::move(other)).swap(*this);
      return *this;
    }
    ~Handle() {
      // Blocks may outlive every handle (completions held by tensors
      // during teardown): orphan the pool and let the last deallocate
      // reap it. Each live block is what keeps the pool reachable, so
      // objects store a raw SlabPool* with no per-object handle churn.
      // Out-of-line tail: the conditional `delete this` confuses GCC's
      // use-after-free flow analysis when several Handle destructors
      // inline into one frame (same reason reap() is out of line).
      if (pool_ != nullptr && --pool_->refs_ == 0) pool_->on_handles_gone();
    }

    void swap(Handle& other) noexcept { std::swap(pool_, other.pool_); }
    [[nodiscard]] SlabPool* get() const noexcept { return pool_; }
    SlabPool* operator->() const noexcept { return pool_; }
    [[nodiscard]] explicit operator bool() const noexcept {
      return pool_ != nullptr;
    }

   private:
    friend class SlabPool;
    explicit Handle(SlabPool* adopted) noexcept : pool_(adopted) {
      ++pool_->refs_;
    }
    SlabPool* pool_ = nullptr;
  };

  /// Heap-allocates a pool owned by the returned handle.
  static Handle create() { return Handle(new SlabPool()); }

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Returns storage for \p bytes with alignment <= alignof(max_align_t).
  /// Requests above kMaxBlockBytes fall through to operator new.
  void* allocate(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (cls == kNumClasses) return ::operator new(bytes);
    FreeNode*& head = free_[cls];
    if (head == nullptr) refill(cls);
    FreeNode* node = head;
    head = node->next;
    ++live_;
    return node;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = size_class(bytes);
    if (cls == kNumClasses) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
    --live_;
    // Last straggler block of an orphaned pool reaps the pool itself.
    if (live_ == 0 && orphaned_) reap();
  }

  /// Blocks currently handed out (diagnostics / tests).
  [[nodiscard]] std::size_t live() const { return live_; }

  /// Chunks requested from malloc so far; constant at steady state.
  [[nodiscard]] std::size_t chunks_allocated() const {
    return chunks_.size();
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  /// Out-of-line `delete this` for orphaned pools (also keeps GCC's
  /// use-after-free flow analysis from flagging the callers, which only
  /// reach here when no caller can touch the pool again).
  void reap();

  /// Last handle dropped: delete now if no blocks are outstanding, else
  /// orphan (the final deallocate reaps). Out of line — see ~Handle().
  void on_handles_gone();

  // Classes cover the event core's objects: completions and waiter nodes
  // (~80-100B) land in the 128B class; everything larger up to 256B is
  // insurance for layout drift.
  static constexpr std::size_t kClassBytes[] = {32, 64, 128, 256};
  static constexpr std::size_t kNumClasses =
      sizeof(kClassBytes) / sizeof(kClassBytes[0]);
  static constexpr std::size_t kChunkBytes = 16 * 1024;

 public:
  /// Largest pooled request. Bigger requests fall through to operator
  /// new and do NOT count toward live(): they do not participate in the
  /// orphaned-pool keepalive, so objects relying on that invariant
  /// (sim::Completion and its waiter nodes) static_assert against this.
  static constexpr std::size_t kMaxBlockBytes = kClassBytes[kNumClasses - 1];

 private:

  static std::size_t size_class(std::size_t bytes) {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      if (bytes <= kClassBytes[c]) return c;
    }
    return kNumClasses;  // sentinel: operator new fallthrough
  }

  void refill(std::size_t cls) {
    const std::size_t block = kClassBytes[cls];
    chunks_.push_back(std::make_unique<Chunk>());
    unsigned char* base = chunks_.back()->bytes;
    // Thread every block of the fresh chunk onto the free list, last block
    // first so allocation order walks the chunk front to back.
    for (std::size_t off = (kChunkBytes / block) * block; off >= block;
         off -= block) {
      auto* node = reinterpret_cast<FreeNode*>(base + off - block);
      node->next = free_[cls];
      free_[cls] = node;
    }
  }

  struct Chunk {
    alignas(std::max_align_t) unsigned char bytes[kChunkBytes];
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  FreeNode* free_[kNumClasses] = {};
  std::size_t live_ = 0;
  std::size_t refs_ = 0;  ///< Handle count (plain; single-threaded pool)
  bool orphaned_ = false;  ///< all handles gone; last live block deletes
};

/// Standard-allocator adapter over a SlabPool, for container nodes and
/// allocate_shared control blocks on single-threaded hot paths (allocator
/// maps, pooled tensor impls). Holds a refcounted Handle so blocks freed
/// after the owner died (tensors outliving their factory) still find the
/// pool alive — the same orphan contract the event core relies on.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(SlabPool::Handle pool) : pool_(std::move(pool)) {
    expects(static_cast<bool>(pool_), "PoolAllocator needs a pool");
  }

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept  // NOLINT
      : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_->allocate(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    pool_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] const SlabPool::Handle& pool() const { return pool_; }

  template <typename U>
  friend bool operator==(const PoolAllocator& a, const PoolAllocator<U>& b) {
    return a.pool_.get() == b.pool().get();
  }

 private:
  SlabPool::Handle pool_;
};

}  // namespace ssdtrain::util
