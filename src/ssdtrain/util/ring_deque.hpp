#pragma once

/// \file ring_deque.hpp
/// Bounded-growth FIFO over a power-of-two ring. std::deque allocates and
/// frees a node roughly every page of sustained push/pop traffic, which is
/// exactly the pattern a stream's task queue and a thread pool's pending
/// queue produce; this ring reaches its high-water capacity once and then
/// never touches the heap again. Elements must be default-constructible
/// and movable; pop_front() resets the vacated slot to T{} so resources
/// held by queued elements (completions, closures) release immediately.

#include <cstddef>
#include <utility>
#include <vector>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::util {

template <typename T>
class RingDeque {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  [[nodiscard]] T& front() {
    expects(size_ > 0, "front() on empty ring");
    return buf_[head_];
  }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
    ++size_;
  }

  void pop_front() {
    expects(size_ > 0, "pop_front() on empty ring");
    buf_[head_] = T{};
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ssdtrain::util
