#pragma once

/// \file rng.hpp
/// Deterministic xoshiro256** PRNG. The simulator must be reproducible run
/// to run, so all stochastic choices (e.g. FTL victim tie-breaking, workload
/// generation) draw from explicitly seeded instances of this generator —
/// never from std::random_device or wall-clock seeds.

#include <cstdint>
#include <limits>

namespace ssdtrain::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator so it composes with <random>
/// distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      s = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ssdtrain::util
