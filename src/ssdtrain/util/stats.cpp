#include "ssdtrain/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  expects(!values.empty(), "percentile of empty sample");
  expects(p >= 0.0 && p <= 100.0, "percentile rank out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  expects(xs.size() == ys.size(), "mismatched fit inputs");
  expects(xs.size() >= 2, "fit needs at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  check(sxx > 0.0, "degenerate fit: all x identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit exponential_fit(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  std::vector<double> log_ys;
  log_ys.reserve(ys.size());
  for (double y : ys) {
    expects(y > 0.0, "exponential fit requires positive values");
    log_ys.push_back(std::log(y));
  }
  return linear_fit(xs, log_ys);
}

double doubling_time(double growth_rate_k) {
  expects(growth_rate_k != 0.0, "zero growth rate has no doubling time");
  return std::log(2.0) / growth_rate_k;
}

}  // namespace ssdtrain::util
