#pragma once

/// \file stats.hpp
/// Small statistics helpers: running moments, percentiles, and least-squares
/// fits (linear and exponential-growth), used by the analysis module for the
/// Fig. 1 trend fits and by benches for run summaries.

#include <cstddef>
#include <vector>

namespace ssdtrain::util {

/// Welford running mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1 divisor)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile via linear interpolation on a copy of \p values.
/// \p p in [0, 100]. Precondition: values non-empty.
double percentile(std::vector<double> values, double p);

/// Result of an ordinary-least-squares line fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// OLS fit. Precondition: xs.size() == ys.size() >= 2.
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Exponential-growth fit y = a * exp(k * x), via OLS on log(y).
/// Returns {k (growth rate per unit x), log(a), r2}. All ys must be > 0.
LinearFit exponential_fit(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Doubling time (in units of x) implied by exponential growth rate k.
double doubling_time(double growth_rate_k);

}  // namespace ssdtrain::util
