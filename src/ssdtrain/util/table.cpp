#include "ssdtrain/util/table.hpp"

#include <algorithm>
#include <sstream>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::util {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  expects(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::right);
  aligns_[0] = Align::left;
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(Row{std::move(cells), false});
}

void AsciiTable::add_separator() { rows_.push_back(Row{{}, true}); }

void AsciiTable::set_align(std::size_t column, Align align) {
  expects(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

std::size_t AsciiTable::row_count() const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.separator) ++n;
  }
  return n;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto pad = [](const std::string& s, std::size_t w, Align a) {
    std::string out;
    const std::size_t fill = w > s.size() ? w - s.size() : 0;
    if (a == Align::right) out.append(fill, ' ');
    out += s;
    if (a == Align::left) out.append(fill, ' ');
    return out;
  };

  auto rule = [&]() {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      line += (c == 0 ? "+" : "");
      line.append(widths[c] + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };

  std::ostringstream out;
  out << rule();
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << " " << pad(headers_[c], widths[c], Align::left) << " |";
  }
  out << "\n" << rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      out << rule();
      continue;
    }
    out << "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      out << " " << pad(row.cells[c], widths[c], aligns_[c]) << " |";
    }
    out << "\n";
  }
  out << rule();
  return out.str();
}

}  // namespace ssdtrain::util
