#pragma once

/// \file table.hpp
/// ASCII table printer used by the bench binaries to emit the paper's tables
/// and figure series in a readable, diff-friendly form.

#include <string>
#include <vector>

namespace ssdtrain::util {

/// Column alignment for AsciiTable.
enum class Align { left, right };

/// Builds and renders a fixed-column ASCII table:
///
///   AsciiTable t({"model", "step time", "peak"});
///   t.add_row({"BERT", "1234.5 ms", "8.12 GB"});
///   std::cout << t.render();
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  /// Sets alignment for a column (default: left for col 0, right otherwise).
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
};

}  // namespace ssdtrain::util
