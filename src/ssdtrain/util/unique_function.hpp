#pragma once

/// \file unique_function.hpp
/// Move-only type-erased callable with inline small-object storage, the
/// event-core replacement for std::function. Two properties matter for the
/// discrete-event engine:
///
///   * Closures up to kInlineBytes that are nothrow-move-constructible are
///     stored inline — scheduling an event, registering a completion
///     waiter, or arming a stream finish callback performs no heap
///     allocation. Larger or throwing-move callables fall back to one heap
///     allocation (exactly what std::function would have done).
///   * Move-only: captured resources (tensors pinned for DMA, completion
///     references) are moved through the queue instead of copied, so a
///     priority-queue pop never duplicates a closure.
///
/// The inline budget is 64 bytes — enough for every closure on the event
/// hot path (stream finish tokens, bandwidth ticks, completion chains);
/// the offloader's big I/O closures (captured paths + pinned tensors)
/// deliberately take the heap path, as they run once per transfer, not
/// once per event.

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ssdtrain::util {

/// Opt-in trivial-relocation trait. A type is trivially relocatable when
/// "move-construct into new storage + destroy the source" is equivalent to
/// memcpy-ing the bytes and *abandoning* the source (no destructor run).
/// That holds for almost every handle type whose move is a pointer steal —
/// sim::CompletionPtr, shared_ptr-backed tensors — but C++ cannot prove it,
/// so types (and closures, via `relocatable()` below) assert it explicitly.
template <typename T>
inline constexpr bool enable_trivial_relocation = false;

template <typename T>
inline constexpr bool is_trivially_relocatable_v =
    std::is_trivially_copyable_v<T> ||
    enable_trivial_relocation<std::remove_cv_t<T>>;

/// Wrapper that carries a caller's assertion that \p F is trivially
/// relocatable. Closures capturing CompletionPtr / pooled tensors wrap
/// themselves in this to take UniqueFunction's memcpy relocation lane
/// through the event ring instead of the move-construct + destroy detour.
template <typename F>
struct Relocatable {
  F fn;

  template <typename... Args>
  decltype(auto) operator()(Args&&... args) {
    return fn(std::forward<Args>(args)...);
  }
};

template <typename F>
inline constexpr bool enable_trivial_relocation<Relocatable<F>> = true;

/// Marks \p fn trivially relocatable (see Relocatable). The caller asserts
/// every capture relocates by memcpy — true for raw/smart pointer handles,
/// ids, and byte counts; false for self-referential captures.
template <typename F>
[[nodiscard]] Relocatable<std::decay_t<F>> relocatable(F&& fn) {
  return Relocatable<std::decay_t<F>>{std::forward<F>(fn)};
}

template <typename Signature, std::size_t InlineBytes = 64>
class UniqueFunction;  // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args, std::size_t InlineBytes>
class UniqueFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes =
      InlineBytes < sizeof(void*) ? sizeof(void*) : InlineBytes;

  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-*)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, UniqueFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &inline_vtable<D>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(fn)));
      vtable_ = &heap_vtable<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { take(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* self, Args&&... args);
    /// Move-constructs *src's callable into dst's storage, then destroys
    /// the src copy. Both point at kInlineBytes of raw storage. Null when
    /// the callable is trivially relocatable (see below).
    void (*relocate)(void* src, void* dst) noexcept;
    /// Null when destruction is a no-op (trivially destructible callable).
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  // Trivially-copyable callables (closures capturing pointers, ids, byte
  // counts — the whole event hot path) relocate by memcpy with no
  // indirect call; a null `relocate` in the vtable marks them. Types that
  // opted in via enable_trivial_relocation (the `relocatable()` wrapper)
  // take the same lane. The heap fallback relocates by moving one
  // pointer, so it is trivial too.
  template <typename D>
  static constexpr VTable inline_vtable = {
      [](void* self, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(self)))(
            std::forward<Args>(args)...);
      },
      is_trivially_relocatable_v<D>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              D* from = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* self) noexcept {
              std::launder(reinterpret_cast<D*>(self))->~D();
            },
  };

  template <typename D>
  static constexpr VTable heap_vtable = {
      [](void* self, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(self)))(
            std::forward<Args>(args)...);
      },
      nullptr,  // a stored pointer always relocates by memcpy
      [](void* self) noexcept {
        delete *std::launder(reinterpret_cast<D**>(self));
      },
  };

  void take(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->relocate == nullptr) {
        __builtin_memcpy(storage_, other.storage_, kInlineBytes);
      } else {
        vtable_->relocate(other.storage_, storage_);
      }
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace ssdtrain::util
