#include "ssdtrain/util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace ssdtrain::util {

namespace {

std::string format_scaled(double value, double base,
                          const std::array<const char*, 6>& suffixes,
                          const char* tail) {
  double magnitude = std::fabs(value);
  std::size_t idx = 0;
  while (magnitude >= base && idx + 1 < suffixes.size()) {
    magnitude /= base;
    value /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s%s", value, suffixes[idx], tail);
  return buf;
}

}  // namespace

std::string format_bytes(double bytes) {
  return format_scaled(bytes, 1e3, {"B", "KB", "MB", "GB", "TB", "PB"}, "");
}

std::string format_bytes_binary(double bytes) {
  return format_scaled(bytes, 1024.0, {"B", "KiB", "MiB", "GiB", "TiB", "PiB"},
                       "");
}

std::string format_bandwidth(BytesPerSecond bw) {
  return format_scaled(bw, 1e3, {"B", "KB", "MB", "GB", "TB", "PB"}, "/s");
}

std::string format_time(Seconds t) {
  char buf[64];
  const double magnitude = std::fabs(t);
  if (magnitude >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", t);
  } else if (magnitude >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", t * 1e3);
  } else if (magnitude >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", t * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", t * 1e9);
  }
  return buf;
}

std::string format_flops_rate(FlopsPerSecond rate) {
  return format_scaled(rate, 1e3,
                       {"FLOP", "KFLOP", "MFLOP", "GFLOP", "TFLOP", "PFLOP"},
                       "/s");
}

std::string format_duration_long(Seconds t) {
  char buf[64];
  if (t >= years(1.0)) {
    std::snprintf(buf, sizeof(buf), "%.2f years", t / years(1.0));
  } else if (t >= days(1.0)) {
    std::snprintf(buf, sizeof(buf), "%.1f days", t / days(1.0));
  } else if (t >= hours(1.0)) {
    std::snprintf(buf, sizeof(buf), "%.1f hours", t / hours(1.0));
  } else {
    return format_time(t);
  }
  return buf;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace ssdtrain::util
