#pragma once

/// \file units.hpp
/// Size, time, and bandwidth units plus human-readable formatting.
///
/// Conventions used throughout the code base:
///  - Bytes are `std::int64_t` (signed arithmetic per ES.102); helpers below
///    construct byte counts from KiB/MiB/GiB (powers of two) and KB/MB/GB/TB
///    (powers of ten, used for storage-device capacities and bandwidths).
///  - Simulated time is `double` seconds (sim::TimePoint).
///  - Bandwidth is `double` bytes per second.

#include <cstdint>
#include <string>

namespace ssdtrain::util {

using Bytes = std::int64_t;

// -- powers of two (memory sizes) -------------------------------------------
constexpr Bytes kib(double n) { return static_cast<Bytes>(n * 1024.0); }
constexpr Bytes mib(double n) { return static_cast<Bytes>(n * 1024.0 * 1024.0); }
constexpr Bytes gib(double n) {
  return static_cast<Bytes>(n * 1024.0 * 1024.0 * 1024.0);
}
constexpr Bytes tib(double n) {
  return static_cast<Bytes>(n * 1024.0 * 1024.0 * 1024.0 * 1024.0);
}

// -- powers of ten (device capacities, bandwidths) ---------------------------
constexpr Bytes kb(double n) { return static_cast<Bytes>(n * 1e3); }
constexpr Bytes mb(double n) { return static_cast<Bytes>(n * 1e6); }
constexpr Bytes gb(double n) { return static_cast<Bytes>(n * 1e9); }
constexpr Bytes tb(double n) { return static_cast<Bytes>(n * 1e12); }
constexpr Bytes pb(double n) { return static_cast<Bytes>(n * 1e15); }

// -- bandwidth ---------------------------------------------------------------
using BytesPerSecond = double;
constexpr BytesPerSecond gbps(double n) { return n * 1e9; }
constexpr BytesPerSecond mbps(double n) { return n * 1e6; }

// -- time --------------------------------------------------------------------
using Seconds = double;
constexpr Seconds ms(double n) { return n * 1e-3; }
constexpr Seconds us(double n) { return n * 1e-6; }
constexpr Seconds ns(double n) { return n * 1e-9; }
constexpr Seconds minutes(double n) { return n * 60.0; }
constexpr Seconds hours(double n) { return n * 3600.0; }
constexpr Seconds days(double n) { return n * 86400.0; }
constexpr Seconds years(double n) { return n * 86400.0 * 365.25; }

// -- compute -----------------------------------------------------------------
using Flops = double;  ///< floating-point operations (a count, not a rate)
using FlopsPerSecond = double;
constexpr Flops tflop(double n) { return n * 1e12; }
constexpr FlopsPerSecond tflops(double n) { return n * 1e12; }

// -- formatting --------------------------------------------------------------

/// "12.85 GB" style, decimal units (matches how the paper reports sizes).
std::string format_bytes(double bytes);

/// "12.85 GiB" style, binary units (matches allocator-style reporting).
std::string format_bytes_binary(double bytes);

/// "18.0 GB/s" style.
std::string format_bandwidth(BytesPerSecond bw);

/// "1234.5 ms" / "1.23 s" style with automatic unit choice.
std::string format_time(Seconds t);

/// "149.3 TFLOP/s" style.
std::string format_flops_rate(FlopsPerSecond rate);

/// "2.31 years" / "45 days" style for lifespan reporting.
std::string format_duration_long(Seconds t);

/// Fixed-precision helper: format a double with \p digits decimals.
std::string format_fixed(double value, int digits);

/// "−47.2%" style; \p fraction is e.g. -0.472.
std::string format_percent(double fraction, int digits = 1);

}  // namespace ssdtrain::util
