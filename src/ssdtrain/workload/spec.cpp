#include "ssdtrain/workload/spec.hpp"

#include <algorithm>

#include "ssdtrain/util/check.hpp"

namespace ssdtrain::workload {

double AttentionSpec::kv_ratio(std::int64_t query_heads) const {
  if (kv_heads <= 0) return 1.0;
  return static_cast<double>(kv_heads) / static_cast<double>(query_heads);
}

double FfnSpec::effective_load() const {
  if (!moe()) return 1.0;
  return static_cast<double>(top_k) * capacity_factor /
         static_cast<double>(expert_parallel);
}

std::int64_t FfnSpec::routed_tokens(std::int64_t seq) const {
  if (!moe()) return seq;
  const double tokens = static_cast<double>(seq) * effective_load();
  const auto rounded = static_cast<std::int64_t>(tokens + 0.5);
  return rounded < 1 ? 1 : rounded;
}

int WorkloadSpec::total_layers() const {
  int total = 0;
  for (const LayerSpec& group : layers) total += group.count;
  return total;
}

bool WorkloadSpec::has_cross_attention() const {
  for (const LayerSpec& group : layers) {
    if (group.attention.cross_attention) return true;
  }
  return false;
}

bool WorkloadSpec::has_moe() const {
  for (const LayerSpec& group : layers) {
    if (group.ffn.moe()) return true;
  }
  return false;
}

const LayerSpec& WorkloadSpec::group_of(int index) const {
  util::expects(index >= 0, "negative layer index");
  for (const LayerSpec& group : layers) {
    if (index < group.count) return group;
    index -= group.count;
  }
  util::check(false, "layer index past the end of the workload");
  return layers.back();  // unreachable
}

const LayerSpec& WorkloadSpec::last_group() const {
  util::expects(!layers.empty(), "empty workload");
  return layers.back();
}

void WorkloadSpec::validate(std::int64_t query_heads) const {
  util::expects(!layers.empty(), "workload needs at least one layer group");
  bool saw_memory_producer = false;
  bool saw_cross = false;
  for (const LayerSpec& group : layers) {
    util::expects(group.count >= 1, "layer group count must be >= 1");
    const AttentionSpec& attn = group.attention;
    if (attn.kv_heads > 0) {
      util::expects(attn.kv_heads <= query_heads,
                    "kv_heads exceeds query heads");
      util::expects(query_heads % attn.kv_heads == 0,
                    "query heads must be a multiple of kv_heads");
    }
    if (attn.cross_attention) {
      util::expects(saw_memory_producer || stage_slice,
                    "cross-attention group needs a preceding encoder group "
                    "to produce the shared memory");
      saw_cross = true;
    } else {
      // The encoder-decoder topology runs every non-cross group before
      // the cross groups; an encoder group declared *after* a decoder
      // group would execute out of declared order, desynchronising the
      // planner's per-layer profile (and its last-group carve-out) from
      // execution. Reject the interleaving instead of reordering it.
      util::expects(!saw_cross,
                    "encoder (non-cross) groups must precede every "
                    "cross-attention group");
      saw_memory_producer = true;
    }
    const FfnSpec& ffn = group.ffn;
    util::expects(ffn.num_experts >= 1, "num_experts must be >= 1");
    util::expects(ffn.top_k >= 1 && ffn.top_k <= ffn.num_experts,
                  "top_k must be in [1, num_experts]");
    util::expects(ffn.capacity_factor >= 1.0,
                  "capacity factor must be >= 1");
    util::expects(ffn.expert_parallel >= 1 &&
                      ffn.num_experts % ffn.expert_parallel == 0,
                  "expert_parallel must divide num_experts");
  }
}

WorkloadSpec WorkloadSpec::slice(int first, int count) const {
  util::expects(first >= 0 && count >= 1, "bad slice range");
  util::expects(first + count <= total_layers(), "slice past the workload");
  WorkloadSpec out;
  out.decoder_only = decoder_only;
  out.stage_slice = true;
  int begin = first;            // remaining offset into the current group
  int remaining = count;
  for (const LayerSpec& group : layers) {
    if (remaining == 0) break;
    if (begin >= group.count) {
      begin -= group.count;
      continue;
    }
    LayerSpec part = group;
    part.count = std::min(group.count - begin, remaining);
    remaining -= part.count;
    begin = 0;
    out.layers.push_back(std::move(part));
  }
  return out;
}

WorkloadSpec WorkloadSpec::single_stack(int layers, bool causal) {
  util::expects(layers >= 1, "need at least one layer");
  WorkloadSpec spec;
  LayerSpec group;
  group.label = "layer";
  group.count = layers;
  group.attention.causal = causal;
  spec.layers.push_back(std::move(group));
  spec.decoder_only = causal;
  return spec;
}

WorkloadSpec WorkloadSpec::encoder_decoder(int encoders, int decoders) {
  util::expects(encoders >= 1, "need at least one encoder layer");
  util::expects(decoders >= 1, "need at least one decoder layer");
  WorkloadSpec spec;
  LayerSpec enc;
  enc.label = "encoder";
  enc.count = encoders;
  spec.layers.push_back(std::move(enc));
  LayerSpec dec;
  dec.label = "decoder";
  dec.count = decoders;
  dec.attention.causal = true;
  dec.attention.cross_attention = true;
  spec.layers.push_back(std::move(dec));
  return spec;
}

}  // namespace ssdtrain::workload
