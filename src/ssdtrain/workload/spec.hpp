#pragma once

/// \file spec.hpp
/// Layer-composition description of a training workload. A WorkloadSpec is
/// an ordered list of LayerSpec groups — each group a run of identical
/// transformer layers described by their attention variant (MHA or GQA,
/// causal or bidirectional, optional cross-attention over a shared encoder
/// memory) and FFN variant (dense, or MoE with experts / top-k / capacity
/// factor) — bracketed by the implicit embedding and LM-head blocks every
/// model shares.
///
/// The spec is the single source of truth for the whole activation
/// accounting path: modules/ builds the layer stack from it, analysis/
/// folds per-LayerSpec byte and FLOP contributions over it, and core/
/// plans the offload budget from the resulting per-layer byte profile.
/// Adding a workload is a data change (a new factory filling in a spec),
/// not a code change.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ssdtrain::workload {

/// Self-attention variant of one layer group.
struct AttentionSpec {
  /// Causal (autoregressive) masking. Drives the module construction; the
  /// perf model's triangular-FLOP discount is a workload-level choice
  /// (WorkloadSpec::decoder_only), matching the paper's §III-D coarseness.
  bool causal = false;
  /// Grouped-query attention: number of key/value heads. 0 means "same as
  /// the query heads" (classic multi-head attention).
  std::int64_t kv_heads = 0;
  /// Adds a cross-attention block over the shared encoder memory (the T5
  /// decoder shape). All cross-attending groups read the same memory,
  /// which the tensor cache deduplicates to a single saved tensor.
  bool cross_attention = false;
  /// Per-group flash-attention override; nullopt inherits the model-level
  /// ModelConfig::flash_attention flag.
  std::optional<bool> flash;

  [[nodiscard]] bool grouped_query(std::int64_t query_heads) const {
    return kv_heads > 0 && kv_heads != query_heads;
  }

  /// kv_heads / query_heads in [0, 1] — the factor by which the K/V
  /// projections (and their saved activations) shrink under GQA. Exactly
  /// 1.0 for MHA, so MHA formulas specialise bit-identically.
  [[nodiscard]] double kv_ratio(std::int64_t query_heads) const;
};

/// Feed-forward variant of one layer group.
struct FfnSpec {
  int num_experts = 1;  ///< 1 = dense MLP (no router)
  int top_k = 1;
  double capacity_factor = 1.0;
  /// Expert parallelism degree: experts are sharded EP ways, and each GPU
  /// processes its 1/EP share of the routed tokens.
  int expert_parallel = 1;

  [[nodiscard]] bool moe() const { return num_experts > 1; }

  /// Per-GPU routed-token multiplier relative to a dense FFN: top_k copies
  /// of every token, inflated by the capacity factor, split across the
  /// expert-parallel group. Exactly 1.0 for the dense configuration.
  [[nodiscard]] double effective_load() const;

  /// Routed tokens per batch element for a sequence of \p seq tokens — the
  /// expert-FFN sequence length. Modules and the analytic activation model
  /// share this rounding so the closed form matches the simulated sizes.
  [[nodiscard]] std::int64_t routed_tokens(std::int64_t seq) const;
};

/// One run of `count` identical transformer layers.
struct LayerSpec {
  std::string label = "layer";  ///< module-name prefix ("encoder", ...)
  int count = 0;
  AttentionSpec attention;
  FfnSpec ffn;
};

/// Whole-model layer composition: embedding -> layer groups -> LM head.
struct WorkloadSpec {
  std::vector<LayerSpec> layers;
  /// Decoder-only LM (the GPT family). The perf model applies the causal
  /// triangular-structure FLOP discount at this granularity — encoder-
  /// decoder stacks keep the full-rectangle estimate even though their
  /// decoder halves mask causally, reproducing the paper's §III-D model.
  bool decoder_only = false;
  /// Set by slice(): this spec covers one pipeline stage's layer range, so
  /// validate() accepts cross-attention groups with no local memory
  /// producer (the encoder memory arrives from an upstream stage).
  bool stage_slice = false;

  [[nodiscard]] bool empty() const { return layers.empty(); }
  [[nodiscard]] int total_layers() const;
  [[nodiscard]] bool has_cross_attention() const;
  [[nodiscard]] bool has_moe() const;
  /// The group owning transformer layer \p index (0-based, forward order).
  [[nodiscard]] const LayerSpec& group_of(int index) const;
  /// The last transformer layer's group — the keep-last-module carve-out
  /// (paper Fig. 2 (4)) is sized from this group's FFN variant.
  [[nodiscard]] const LayerSpec& last_group() const;

  /// Sub-spec covering the `count` transformer layers starting at global
  /// layer `first` (0-based, forward order): partial groups shrink and
  /// untouched groups drop. A slice over the whole range reproduces this
  /// spec's groups exactly (plus the stage_slice marker). Backbone of the
  /// per-pipeline-stage planner budgets.
  [[nodiscard]] WorkloadSpec slice(int first, int count) const;

  /// Contract checks: positive counts, kv_heads dividing the query heads,
  /// MoE fields in range, cross-attention groups preceded by at least one
  /// non-cross group (something must produce the shared memory).
  void validate(std::int64_t query_heads) const;

  // -- factories ------------------------------------------------------------
  /// Uniform single stack (BERT/GPT shape).
  static WorkloadSpec single_stack(int layers, bool causal);
  /// Encoder stack followed by cross-attending decoder stack (T5 shape).
  static WorkloadSpec encoder_decoder(int encoders, int decoders);
};

}  // namespace ssdtrain::workload
