// Tests for the analytic models: activation formulas, the llm-analysis-style
// step-time estimate, lifespan projections (Fig. 5 shape), and the Fig. 1
// trend fits.

#include <gtest/gtest.h>

#include "ssdtrain/analysis/activation_model.hpp"
#include "ssdtrain/analysis/lifespan.hpp"
#include "ssdtrain/analysis/perf_model.hpp"
#include "ssdtrain/analysis/trends.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/util/units.hpp"

namespace a = ssdtrain::analysis;
namespace m = ssdtrain::modules;
namespace p = ssdtrain::parallel;
namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

TEST(ActivationModel, FlashLayerIs34Sbh) {
  auto cfg = m::bert_config(8192, 4, 16);
  p::ParallelConfig tp1;
  const double sbh = 1024.0 * 16 * 8192;
  EXPECT_EQ(a::layer_activation_bytes(cfg, tp1),
            static_cast<u::Bytes>(34.0 * sbh));
}

TEST(ActivationModel, TpFormula) {
  auto cfg = m::bert_config(8192, 4, 16);
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  const double sbh = 1024.0 * 16 * 8192;
  EXPECT_EQ(a::layer_activation_bytes(cfg, tp2),
            static_cast<u::Bytes>(sbh * (10.0 + 12.0)));
}

TEST(ActivationModel, SequenceParallelShardsEverything) {
  auto cfg = m::bert_config(8192, 4, 16);
  p::ParallelConfig sp;
  sp.tensor_parallel = 8;
  sp.sequence_parallel = true;
  const double sbh = 1024.0 * 16 * 8192;
  EXPECT_EQ(a::layer_activation_bytes(cfg, sp),
            static_cast<u::Bytes>(sbh * 34.0 / 8.0));
}

TEST(ActivationModel, UnfusedAddsSoftmaxTerm) {
  auto flash = m::bert_config(8192, 4, 16);
  auto unfused = flash;
  unfused.flash_attention = false;
  p::ParallelConfig tp1;
  const double extra = 5.0 * 64 * 1024.0 * 1024.0 * 16;  // 5*a*s^2*b
  EXPECT_EQ(a::layer_activation_bytes(unfused, tp1) -
                a::layer_activation_bytes(flash, tp1),
            static_cast<u::Bytes>(extra));
}

TEST(ActivationModel, T5CountsDecodersAndSharedMemory) {
  auto cfg = m::t5_config(8192, 3, 16);  // 2 encoders + 1 decoder
  p::ParallelConfig tp1;
  const double sbh = 1024.0 * 16 * 8192;
  const auto expected = static_cast<u::Bytes>(
      3 * 34.0 * sbh + (5.0 + 8.0) * sbh /* cross-attn */ +
      2.0 * sbh /* shared memory */ + 2.0 * sbh /* head input */);
  EXPECT_EQ(a::model_activation_bytes(cfg, tp1), expected);
}

TEST(ActivationModel, OffloadableExcludesLastMlpBlock) {
  auto cfg = m::bert_config(12288, 3, 16);
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  const auto total = a::model_activation_bytes(cfg, tp2);
  const auto offloadable = a::offloadable_activation_bytes(cfg, tp2);
  // Kept: fc1 input (2) + fc1 out (8/2) + gelu out (8/2) + mask (1).
  const double sbh = 1024.0 * 16 * 12288;
  EXPECT_EQ(total - offloadable, static_cast<u::Bytes>(11.0 * sbh));
}

TEST(PerfModel, StepEstimateInPaperBand) {
  // BERT H12288 L3 B16 TP2 on A100s: the paper's Fig. 6(a) shows ~1.9 s and
  // Fig. 7 ~140-150 TFLOP/s per GPU.
  auto cfg = m::bert_config(12288, 3, 16);
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  const auto est = a::estimate_step(cfg, tp2, gpu, a::Fabrics{});
  EXPECT_GT(est.step, u::ms(1500));
  EXPECT_LT(est.step, u::ms(2400));
  EXPECT_GT(est.model_throughput, u::tflops(120));
  EXPECT_LT(est.model_throughput, u::tflops(170));
  EXPECT_NEAR(est.backward, 2.0 * est.forward, 1e-9);
}

TEST(PerfModel, ThroughputImprovesWithMicroBatchSize) {
  // The Fig. 8(a) effect: larger micro-batches amortise the weight update
  // and raise kernel efficiency.
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  double last = 0.0;
  for (std::int64_t b : {1, 2, 4, 8, 16}) {
    auto cfg = m::bert_config(12288, 3, b);
    const auto est = a::estimate_step(cfg, tp2, gpu, a::Fabrics{});
    EXPECT_GT(est.model_throughput, last) << "b=" << b;
    last = est.model_throughput;
  }
}

TEST(PerfModel, PipelineBubbleMatchesFormula) {
  auto cfg = m::gpt_config(8192, 8, 2);
  p::ParallelConfig pp4;
  pp4.pipeline_parallel = 4;
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  const auto est = a::estimate_step(cfg, pp4, gpu, a::Fabrics{}, 8);
  EXPECT_NEAR(est.pipeline_bubble_fraction, 3.0 / 11.0, 1e-12);
}

TEST(PerfModel, RequiredBandwidthUsesHalfStepWindow) {
  EXPECT_DOUBLE_EQ(a::required_write_bandwidth(u::gb(10), 2.0),
                   u::gbps(10));
}

TEST(Lifespan, Fig5ShapeHolds) {
  // The paper's conclusions: lifespan > 2 years everywhere, per-GPU write
  // bandwidth <= ~12.1 GB/s, both improving as the system scales up.
  a::SsdProvisioning prov;
  prov.rating = hw::catalog::samsung_980pro_rating();
  const auto gpu = hw::catalog::a100_sxm_80gb();
  const auto scenarios = a::fig5_scenarios();
  ASSERT_EQ(scenarios.size(), 12u);

  std::string last_label;
  double last_bw = 0.0;
  for (const auto& s : scenarios) {
    const auto proj = a::project_lifespan(s, gpu, prov);
    EXPECT_GT(proj.lifespan, u::years(2.0)) << s.label << " @" << s.gpu_count;
    EXPECT_LT(proj.write_bandwidth_per_gpu, u::gbps(13))
        << s.label << " @" << s.gpu_count;
    EXPECT_GT(proj.activations_per_gpu_step, u::gb(50));
    EXPECT_LT(proj.activations_per_gpu_step, u::tb(2.0));
    if (s.label == last_label) {
      // Within a scenario family, scaling up reduces the required
      // bandwidth (communication slows per-GPU compute).
      EXPECT_LT(proj.write_bandwidth_per_gpu, last_bw * 1.001)
          << s.label << " @" << s.gpu_count;
    }
    last_label = s.label;
    last_bw = proj.write_bandwidth_per_gpu;
  }
}

TEST(Lifespan, MoreSsdsPerGpuLastLonger) {
  a::SsdProvisioning four, eight;
  four.rating = eight.rating = hw::catalog::samsung_980pro_rating();
  four.ssds_per_gpu = 4;
  eight.ssds_per_gpu = 8;
  const auto scenario = a::fig5_scenarios().front();
  const auto gpu = hw::catalog::a100_sxm_80gb();
  EXPECT_NEAR(a::project_lifespan(scenario, gpu, eight).lifespan /
                  a::project_lifespan(scenario, gpu, four).lifespan,
              2.0, 0.01);
}

TEST(Trends, DatasetsNonEmptyAndDated) {
  for (auto series :
       {a::TrendSeries::gpu_fp16_throughput,
        a::TrendSeries::gpu_memory_capacity, a::TrendSeries::llm_size}) {
    const auto points = a::trend_points(series);
    EXPECT_GE(points.size(), 8u);
    for (const auto& pt : points) {
      EXPECT_GT(pt.year, 2015.0);
      EXPECT_LT(pt.year, 2026.0);
      EXPECT_GT(pt.value, 0.0);
    }
  }
}

TEST(Trends, MemoryGrowsMuchSlowerThanCompute) {
  // The paper's headline Fig. 1 claim: memory capacity grows at ~41% the
  // rate of compute throughput.
  const double ratio = a::memory_vs_compute_growth_ratio();
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 0.60);
}

TEST(Trends, LlmSizeTracksCompute) {
  const double ratio = a::llm_vs_compute_growth_ratio();
  EXPECT_GT(ratio, 0.8);
}

TEST(Trends, FitsAreExponentialQuality) {
  for (auto series :
       {a::TrendSeries::gpu_fp16_throughput,
        a::TrendSeries::gpu_memory_capacity, a::TrendSeries::llm_size}) {
    const auto fit = a::fit_trend(series);
    EXPECT_GT(fit.fit.r2, 0.7);
    EXPECT_GT(fit.growth_per_year, 1.0);
    EXPECT_GT(fit.doubling_years, 0.0);
  }
}
