// Tests for the incremental bandwidth-network internals: slot-map flow ids
// across reuse, coalesced filling passes, component-restricted refills, and
// the differential property that incremental reallocation produces
// byte-identical completion times and utilisation values versus the naive
// full-refill reference on randomized flow arrival/departure sequences.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ssdtrain/sim/bandwidth_network.hpp"
#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/util/label.hpp"
#include "ssdtrain/util/rng.hpp"
#include "ssdtrain/util/units.hpp"

namespace sim = ssdtrain::sim;
namespace u = ssdtrain::util;

using RefillPolicy = sim::BandwidthNetwork::RefillPolicy;

TEST(BandwidthIncremental, FlowIdsStayUniqueAcrossSlotReuse) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  const auto first = net.start_flow("a", u::gb(10), {link}, [] {});
  EXPECT_TRUE(net.flow_active(first));
  s.run();
  EXPECT_FALSE(net.flow_active(first));
  // The second flow reuses the first flow's slot; the stale id must not
  // resolve to it.
  const auto second = net.start_flow("b", u::gb(10), {link}, [] {});
  EXPECT_NE(first, second);
  EXPECT_TRUE(net.flow_active(second));
  EXPECT_FALSE(net.flow_active(first));
  EXPECT_DOUBLE_EQ(net.flow_remaining(first), 0.0);
  EXPECT_EQ(net.active_flows(), 1u);
  s.run();
}

TEST(BandwidthIncremental, SameInstantStartsCoalesceIntoOnePass) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  for (int i = 0; i < 10; ++i) {
    net.start_flow(u::label("f", i), u::gb(10), {link}, [] {});
  }
  s.run();
  // One pass rates the whole batch at t=0; the joint completion tick runs
  // one final (empty) pass. Without coalescing this would be 11 passes.
  EXPECT_EQ(net.filling_passes(), 2u);
  EXPECT_EQ(net.flows_refilled(), 10u);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);  // 10 flows x 10 GB at 10 GB/s
}

TEST(BandwidthIncremental, RefillTouchesOnlyTheDirtyComponent) {
  sim::Simulator s;
  sim::BandwidthNetwork incremental(s, RefillPolicy::incremental);
  sim::BandwidthNetwork full(s, RefillPolicy::full);
  // Two independent contention domains per network: flows on array B churn
  // while one long flow rides array A undisturbed.
  for (auto* net : {&incremental, &full}) {
    auto a = net->add_resource("arrayA", u::gbps(10));
    auto b = net->add_resource("arrayB", u::gbps(10));
    net->start_flow("long", u::gb(100), {a}, [] {});
    for (int i = 0; i < 8; ++i) {
      s.schedule_at(i * 0.5, [net, b] {
        net->start_flow("churn", u::gb(2), {b}, [] {});
      });
    }
  }
  s.run();
  EXPECT_EQ(incremental.filling_passes(), full.filling_passes());
  // The churn passes re-rate array B's flows only; the full policy re-rates
  // the long flow every time as well.
  EXPECT_LT(incremental.flows_refilled(), full.flows_refilled());
  EXPECT_DOUBLE_EQ(incremental.resource_delivered(0), 100e9);
  EXPECT_DOUBLE_EQ(incremental.resource_delivered(0),
                   full.resource_delivered(0));
}

TEST(BandwidthIncremental, DuplicateResourcesInPathCountOnce) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  double t = -1;
  // A repeated hop must not halve the fair share or double-count delivery.
  net.start_flow("dup", u::gb(20), {link, link}, [&] { t = s.now(); });
  s.run();
  EXPECT_NEAR(t, 2.0, 1e-9);
  EXPECT_NEAR(net.resource_delivered(link), 20e9, 1.0);
}

TEST(BandwidthIncremental, PathlessCappedFlowCompletes) {
  for (RefillPolicy policy : {RefillPolicy::incremental, RefillPolicy::full}) {
    sim::Simulator s;
    sim::BandwidthNetwork net(s, policy);
    double t = -1;
    net.start_flow("direct", u::gb(4), {}, [&] { t = s.now(); }, u::gbps(2));
    s.run();
    EXPECT_NEAR(t, 2.0, 1e-9);
  }
}

TEST(BandwidthIncremental, DropFlowsClearsPendingState) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  net.start_flow("a", u::gb(10), {link}, [] {});
  net.drop_flows();
  EXPECT_EQ(net.active_flows(), 0u);
  s.run();  // the armed flush must no-op instead of crashing
  // The network stays usable after a drop.
  double t = -1;
  net.start_flow("b", u::gb(10), {link}, [&] { t = s.now(); });
  s.run();
  EXPECT_NEAR(t, 1.0, 1e-9);
}

namespace {

/// One randomized flow program: arrivals, sizes, paths, caps, capacity
/// changes. Applied identically to any number of networks.
struct FlowProgram {
  struct FlowEvent {
    double at = 0.0;
    u::Bytes bytes = 0;
    std::vector<std::size_t> path;  // indices into resource ids
    double rate_cap = sim::BandwidthNetwork::unlimited;
  };
  struct CapacityEvent {
    double at = 0.0;
    std::size_t resource = 0;
    double capacity = 0.0;
  };
  std::vector<double> capacities;
  std::vector<FlowEvent> flows;
  std::vector<CapacityEvent> capacity_changes;
};

FlowProgram random_program(std::uint64_t seed) {
  u::Xoshiro256 rng(seed);
  FlowProgram program;
  // Two or three disjoint resource clusters so incremental refills have
  // genuinely independent components to skip.
  const std::size_t clusters = 2 + rng.uniform_int(2);
  const std::size_t per_cluster = 2 + rng.uniform_int(2);
  for (std::size_t i = 0; i < clusters * per_cluster; ++i) {
    program.capacities.push_back(u::gbps(1.0 + rng.uniform() * 30.0));
  }
  const std::size_t flow_count = 40 + rng.uniform_int(40);
  for (std::size_t i = 0; i < flow_count; ++i) {
    FlowProgram::FlowEvent e;
    e.at = rng.uniform() * 4.0;
    e.bytes = static_cast<u::Bytes>(u::mb(1.0 + rng.uniform() * 4000.0));
    const std::size_t cluster = rng.uniform_int(clusters);
    const std::size_t hops = 1 + rng.uniform_int(per_cluster);
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t r = cluster * per_cluster + rng.uniform_int(per_cluster);
      bool dup = false;
      for (std::size_t seen : e.path) dup = dup || seen == r;
      if (!dup) e.path.push_back(r);
    }
    if (rng.uniform() < 0.3) {
      e.rate_cap = u::gbps(0.5 + rng.uniform() * 4.0);
    }
    program.flows.push_back(std::move(e));
  }
  const std::size_t cap_changes = rng.uniform_int(6);
  for (std::size_t i = 0; i < cap_changes; ++i) {
    FlowProgram::CapacityEvent e;
    e.at = rng.uniform() * 5.0;
    e.resource = rng.uniform_int(program.capacities.size());
    e.capacity = u::gbps(1.0 + rng.uniform() * 30.0);
    program.capacity_changes.push_back(e);
  }
  return program;
}

}  // namespace

// The paper-level property: incremental component-restricted reallocation
// must be indistinguishable from re-filling the whole network on every
// event. Both policies run the same randomized program inside one
// simulator; completion times, delivered bytes, and utilisations must match
// bit-for-bit (EXPECT_EQ on doubles, no tolerance).
TEST(BandwidthIncremental, PropertyIncrementalMatchesFullRefillExactly) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE(u::label("seed ", static_cast<std::int64_t>(seed)));
    const FlowProgram program = random_program(seed);

    sim::Simulator s;
    sim::BandwidthNetwork incremental(s, RefillPolicy::incremental);
    sim::BandwidthNetwork full(s, RefillPolicy::full);

    std::vector<double> done_incremental(program.flows.size(), -1.0);
    std::vector<double> done_full(program.flows.size(), -1.0);

    struct Target {
      sim::BandwidthNetwork* net;
      std::vector<double>* done;
    };
    std::vector<sim::BandwidthNetwork::ResourceId> ids_incremental;
    std::vector<sim::BandwidthNetwork::ResourceId> ids_full;
    for (std::size_t r = 0; r < program.capacities.size(); ++r) {
      ids_incremental.push_back(incremental.add_resource(
          u::label("r", static_cast<std::int64_t>(r)), program.capacities[r]));
      ids_full.push_back(
          full.add_resource(u::label("r", static_cast<std::int64_t>(r)), program.capacities[r]));
    }
    for (Target target : {Target{&incremental, &done_incremental},
                          Target{&full, &done_full}}) {
      const auto& ids =
          target.net == &incremental ? ids_incremental : ids_full;
      for (std::size_t i = 0; i < program.flows.size(); ++i) {
        const auto& e = program.flows[i];
        std::vector<sim::BandwidthNetwork::ResourceId> path;
        for (std::size_t r : e.path) path.push_back(ids[r]);
        s.schedule_at(e.at, [target, i, &e, path, &s] {
          target.net->start_flow(
              u::label("f", static_cast<std::int64_t>(i)), e.bytes, path,
              [target, i, &s] { (*target.done)[i] = s.now(); }, e.rate_cap);
        });
      }
      for (const auto& c : program.capacity_changes) {
        const auto rid = ids[c.resource];
        const double capacity = c.capacity;
        s.schedule_at(c.at, [target, rid, capacity] {
          target.net->set_capacity(rid, capacity);
        });
      }
    }
    s.run();

    for (std::size_t i = 0; i < program.flows.size(); ++i) {
      SCOPED_TRACE(u::label("flow ", static_cast<std::int64_t>(i)));
      EXPECT_GE(done_incremental[i], 0.0);
      EXPECT_EQ(done_incremental[i], done_full[i]);  // bit-identical
    }
    for (std::size_t r = 0; r < program.capacities.size(); ++r) {
      SCOPED_TRACE(u::label("resource ", static_cast<std::int64_t>(r)));
      EXPECT_EQ(incremental.resource_delivered(ids_incremental[r]),
                full.resource_delivered(ids_full[r]));
      EXPECT_EQ(incremental.resource_utilization(ids_incremental[r]),
                full.resource_utilization(ids_full[r]));
    }
    // The whole point: the incremental policy did strictly less re-rating
    // work on these multi-component programs.
    EXPECT_LE(incremental.flows_refilled(), full.flows_refilled());
  }
}

TEST(BandwidthCancel, MidFlightCancelCreditsBytesAndFreesTheSlot) {
  for (RefillPolicy policy : {RefillPolicy::incremental, RefillPolicy::full}) {
    sim::Simulator s;
    sim::BandwidthNetwork net(s, policy);
    auto link = net.add_resource("pcie", u::gbps(10));
    bool completed = false;
    auto id = net.start_flow("a", u::gb(10), {link}, [&] { completed = true; });
    s.schedule_at(0.5, [&] {
      EXPECT_TRUE(net.flow_active(id));
      EXPECT_TRUE(net.cancel_flow(id));
      EXPECT_FALSE(net.flow_active(id));
      EXPECT_FALSE(net.cancel_flow(id));  // second cancel: already gone
    });
    s.run();
    // The completion callback never fires, the slot is reclaimed, and the
    // bytes moved before the cancel stay in the delivered accounting.
    EXPECT_FALSE(completed);
    EXPECT_EQ(net.active_flows(), 0u);
    EXPECT_NEAR(net.resource_delivered(link), u::gb(5), u::mb(1));
    // The network stays usable: a follow-up flow gets full capacity.
    // (Scheduled at t=2, past the cancelled flow's defunct completion
    // event, which still advances simulated time as a no-op.)
    double t = -1;
    s.schedule_at(2.0, [&] {
      net.start_flow("b", u::gb(10), {link}, [&] { t = s.now(); });
    });
    s.run();
    EXPECT_NEAR(t, 3.0, 1e-9);
  }
}

TEST(BandwidthCancel, CancelRejectsUnknownAndFinishedIds) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  EXPECT_FALSE(net.cancel_flow(0));       // pseudo id (capped pathless flows)
  EXPECT_FALSE(net.cancel_flow(123456));  // never issued
  auto id = net.start_flow("a", u::gb(1), {link}, [] {});
  s.run();
  EXPECT_FALSE(net.cancel_flow(id));  // already finished
}

// Fault-layer teardown property: a randomized program of flow arrivals,
// capacity changes (the injector's derate windows), and mid-flight cancels
// (RAID-member dropout tearing down in-flight transfers) must behave
// bit-identically under the incremental and full refill policies, never
// fire a cancelled flow's completion, and leak no slots.
TEST(BandwidthCancel, PropertyRandomCancelsMatchAcrossRefillPolicies) {
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    SCOPED_TRACE(u::label("seed ", static_cast<std::int64_t>(seed)));
    FlowProgram program = random_program(seed);
    // Give roughly a third of the flows a cancel point after arrival.
    u::Xoshiro256 rng(seed * 977);
    std::vector<double> cancel_at(program.flows.size(), -1.0);
    for (std::size_t i = 0; i < program.flows.size(); ++i) {
      if (rng.uniform() < 0.35) {
        cancel_at[i] = program.flows[i].at + rng.uniform() * 2.0;
      }
    }

    sim::Simulator s;
    sim::BandwidthNetwork incremental(s, RefillPolicy::incremental);
    sim::BandwidthNetwork full(s, RefillPolicy::full);

    struct Target {
      sim::BandwidthNetwork* net = nullptr;
      std::vector<sim::BandwidthNetwork::ResourceId> ids;
      std::vector<sim::BandwidthNetwork::FlowId> flow_ids;
      std::vector<double> done;
      std::vector<char> cancelled;
    };
    Target targets[2];
    targets[0].net = &incremental;
    targets[1].net = &full;
    for (Target& target : targets) {
      for (std::size_t r = 0; r < program.capacities.size(); ++r) {
        target.ids.push_back(target.net->add_resource(
            u::label("r", static_cast<std::int64_t>(r)),
            program.capacities[r]));
      }
      target.flow_ids.assign(program.flows.size(), 0);
      target.done.assign(program.flows.size(), -1.0);
      target.cancelled.assign(program.flows.size(), 0);
      Target* tp = &target;
      for (std::size_t i = 0; i < program.flows.size(); ++i) {
        const auto& e = program.flows[i];
        std::vector<sim::BandwidthNetwork::ResourceId> path;
        for (std::size_t r : e.path) path.push_back(target.ids[r]);
        s.schedule_at(e.at, [tp, i, &e, path, &s] {
          tp->flow_ids[i] = tp->net->start_flow(
              u::label("f", static_cast<std::int64_t>(i)), e.bytes, path,
              [tp, i, &s] { tp->done[i] = s.now(); }, e.rate_cap);
        });
        if (cancel_at[i] >= 0.0) {
          s.schedule_at(cancel_at[i], [tp, i] {
            tp->cancelled[i] =
                tp->net->cancel_flow(tp->flow_ids[i]) ? 1 : 0;
          });
        }
      }
      for (const auto& c : program.capacity_changes) {
        const auto rid = target.ids[c.resource];
        const double capacity = c.capacity;
        s.schedule_at(c.at, [tp, rid, capacity] {
          tp->net->set_capacity(rid, capacity);
        });
      }
    }
    s.run();

    for (std::size_t i = 0; i < program.flows.size(); ++i) {
      SCOPED_TRACE(u::label("flow ", static_cast<std::int64_t>(i)));
      // Both policies must agree on whether the cancel caught the flow
      // mid-flight, and a caught flow must never complete.
      EXPECT_EQ(targets[0].cancelled[i], targets[1].cancelled[i]);
      EXPECT_EQ(targets[0].done[i], targets[1].done[i]);  // bit-identical
      if (targets[0].cancelled[i] != 0) {
        EXPECT_EQ(targets[0].done[i], -1.0);
      } else if (cancel_at[i] < 0.0) {
        EXPECT_GE(targets[0].done[i], 0.0);
      }
    }
    for (std::size_t r = 0; r < program.capacities.size(); ++r) {
      SCOPED_TRACE(u::label("resource ", static_cast<std::int64_t>(r)));
      EXPECT_EQ(incremental.resource_delivered(targets[0].ids[r]),
                full.resource_delivered(targets[1].ids[r]));
    }
    // No slot or subscriber leaks: every flow either completed or was torn
    // down, and both networks drained to empty.
    EXPECT_EQ(incremental.active_flows(), 0u);
    EXPECT_EQ(full.active_flows(), 0u);
  }
}
