// Unit tests for the tensor cache: every branch of Alg. 1 (weights, CPU,
// small tensors, budget, backward, keep scopes), get_id deduplication,
// asynchronous store lifecycle, data forwarding, prefetch-miss loads, and
// micro-batch record switching.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>

#include "ssdtrain/core/offloader.hpp"
#include "ssdtrain/core/tensor_cache.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/util/units.hpp"

namespace core = ssdtrain::core;
namespace hw = ssdtrain::hw;
namespace t = ssdtrain::tensor;
namespace g = ssdtrain::graph;
namespace u = ssdtrain::util;

namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest()
      : node_(hw::catalog::single_gpu_node(2)),
        factory_(*node_.gpu(0).allocator),
        offloader_(node_, factory_, {}) {}

  core::TensorCache make_cache(core::TensorCacheConfig cfg = {}) {
    return core::TensorCache(node_.simulator(), offloader_, cfg);
  }

  t::Tensor activation(const char* name, u::Bytes mib_size = 64) {
    return factory_.cuda(name, {u::mib(mib_size) / 2}, t::DType::fp16,
                         hw::MemoryTag::activation);
  }

  hw::TrainingNode node_;
  t::TensorFactory factory_;
  core::SsdOffloader offloader_;
};

}  // namespace

TEST_F(CacheTest, WeightsPassThrough) {
  auto cache = make_cache();
  auto w = factory_.cuda("w", {4096, 4096}, t::DType::fp16,
                         hw::MemoryTag::weights);
  cache.register_weight(w);
  EXPECT_TRUE(cache.is_weight(w));
  // Both the weight and its transpose view are recognised (§III-C1).
  EXPECT_TRUE(cache.is_weight(w.transpose_view()));

  const auto packed = cache.hooks().pack(w.transpose_view());
  EXPECT_TRUE(std::holds_alternative<t::Tensor>(packed));
  EXPECT_EQ(cache.stats().passthrough_weight, 1u);
  EXPECT_EQ(cache.stats().offload_started, 0u);
}

TEST_F(CacheTest, CpuTensorsPassThrough) {
  auto cache = make_cache();
  auto ids = factory_.cpu("ids", {1024, 1024, 2}, t::DType::int32);
  const auto packed = cache.hooks().pack(ids);
  EXPECT_TRUE(std::holds_alternative<t::Tensor>(packed));
  EXPECT_EQ(cache.stats().passthrough_cpu, 1u);
}

TEST_F(CacheTest, SmallTensorsPassThrough) {
  auto cache = make_cache();
  // Alg. 1 line 2: fewer than 2^20 elements.
  auto small = factory_.cuda("small", {1 << 19}, t::DType::fp16,
                             hw::MemoryTag::activation);
  const auto packed = cache.hooks().pack(small);
  EXPECT_TRUE(std::holds_alternative<t::Tensor>(packed));
  EXPECT_EQ(cache.stats().passthrough_small, 1u);
}

TEST_F(CacheTest, ActivationIsOffloadedAndMemoryReclaimed) {
  auto cache = make_cache();
  auto& alloc = *node_.gpu(0).allocator;
  t::TensorId id;
  {
    auto x = activation("x");
    const auto packed = cache.hooks().pack(x);
    ASSERT_TRUE(std::holds_alternative<t::TensorId>(packed));
    id = std::get<t::TensorId>(packed);
    EXPECT_EQ(cache.entry_state(id),
              core::TensorCache::EntryState::offloading);
  }
  // Strong ref held by the cache while the store drains.
  EXPECT_GT(alloc.live(hw::MemoryTag::activation), 0);
  node_.simulator().run();
  EXPECT_EQ(cache.entry_state(id), core::TensorCache::EntryState::offloaded);
  // "Once the tensor finishes offloading, the tensor cache no longer holds
  // a reference" — memory reclaimed.
  EXPECT_EQ(alloc.live(hw::MemoryTag::activation), 0);
  EXPECT_EQ(cache.stats().offload_started, 1u);
}

TEST_F(CacheTest, DedupSecondSaveIssuesNoIo) {
  auto cache = make_cache();
  auto x = activation("x");
  const auto p1 = cache.hooks().pack(x);
  const auto p2 = cache.hooks().pack(x);
  EXPECT_EQ(std::get<t::TensorId>(p1), std::get<t::TensorId>(p2));
  EXPECT_EQ(cache.stats().offload_started, 1u);
  EXPECT_EQ(cache.stats().dedup_hits, 1u);
  EXPECT_EQ(offloader_.stats().stores, 1u);
}

TEST_F(CacheTest, BudgetExhaustionKeepsTensors) {
  core::TensorCacheConfig cfg;
  cfg.offload_budget = u::mib(100);
  auto cache = make_cache(cfg);
  auto a = activation("a", 64);
  auto b = activation("b", 64);
  cache.hooks().pack(a);  // 64 MiB: fits
  const auto packed_b = cache.hooks().pack(b);  // would exceed 100 MiB
  EXPECT_EQ(cache.stats().offload_started, 1u);
  EXPECT_EQ(cache.stats().kept_budget, 1u);
  EXPECT_EQ(cache.entry_state(std::get<t::TensorId>(packed_b)),
            core::TensorCache::EntryState::kept);
}

TEST_F(CacheTest, BackwardPacksAreKept) {
  // Alg. 1's is_current_in_backward(): recomputation inside backward must
  // not re-offload what it rematerialises.
  auto cache = make_cache();
  cache.on_backward_begin();
  auto x = activation("x");
  const auto packed = cache.hooks().pack(x);
  EXPECT_EQ(cache.entry_state(std::get<t::TensorId>(packed)),
            core::TensorCache::EntryState::kept);
  EXPECT_EQ(cache.stats().kept_backward, 1u);
}

TEST_F(CacheTest, UnpackKeptReturnsSameTensor) {
  core::TensorCacheConfig cfg;
  cfg.offload_budget = 0;  // keep everything
  auto cache = make_cache(cfg);
  auto x = activation("x");
  const auto packed = cache.hooks().pack(x);
  auto back = cache.hooks().unpack(packed);
  EXPECT_TRUE(same_storage(back, x));
}

TEST_F(CacheTest, ForwardingServesInFlightStores) {
  auto cache = make_cache();
  auto x = activation("x");
  const auto packed = cache.hooks().pack(x);
  // Do NOT run the simulator: the store is still in flight.
  auto back = cache.hooks().unpack(packed);
  EXPECT_TRUE(same_storage(back, x));
  EXPECT_EQ(cache.stats().forwards, 1u);
  // After the store completes, the forwarded tensor stays resident for
  // future scopes (paper §III-C2): both in memory and on SSD.
  node_.simulator().run();
  EXPECT_EQ(cache.entry_state(std::get<t::TensorId>(packed)),
            core::TensorCache::EntryState::loaded);
  auto again = cache.hooks().unpack(packed);
  EXPECT_TRUE(same_storage(again, x));
  EXPECT_EQ(offloader_.stats().loads, 0u);  // no round trip ever issued
}

TEST_F(CacheTest, ForwardingDisabledGatesOnReload) {
  core::TensorCacheConfig cfg;
  cfg.forwarding = false;
  auto cache = make_cache(cfg);
  auto x = activation("x");
  const auto packed = cache.hooks().pack(x);
  auto back = cache.hooks().unpack(packed);
  EXPECT_TRUE(back.defined());
  // The returned tensor is gated on store + reload, not ready yet.
  ASSERT_TRUE(back.storage()->ready_event() != nullptr);
  EXPECT_FALSE(back.storage()->ready_event()->done());
  node_.simulator().run();
  EXPECT_TRUE(back.storage()->ready_event()->done());
  EXPECT_EQ(cache.stats().forwards, 0u);
  EXPECT_EQ(offloader_.stats().loads, 1u);
}

TEST_F(CacheTest, UnpackAfterStoreLoadsFromSsd) {
  auto cache = make_cache();
  auto x = activation("x");
  const auto packed = cache.hooks().pack(x);
  node_.simulator().run();  // store completes; GPU copy reclaimed
  x.reset();

  auto back = cache.hooks().unpack(packed);
  EXPECT_TRUE(back.defined());
  EXPECT_EQ(cache.entry_state(std::get<t::TensorId>(packed)),
            core::TensorCache::EntryState::loading);
  EXPECT_EQ(cache.stats().miss_loads, 1u);
  node_.simulator().run();
  EXPECT_EQ(cache.entry_state(std::get<t::TensorId>(packed)),
            core::TensorCache::EntryState::loaded);
  // A second unpack returns the already-loaded tensor without new I/O.
  auto again = cache.hooks().unpack(packed);
  EXPECT_TRUE(same_storage(again, back));
  EXPECT_EQ(offloader_.stats().loads, 1u);
}

TEST_F(CacheTest, MicroBatchRecordsAreIndependent) {
  auto cache = make_cache();
  cache.on_micro_batch(0);
  auto x0 = activation("x0");
  const auto p0 = cache.hooks().pack(x0);
  cache.on_micro_batch(1);
  auto x1 = activation("x1");
  const auto p1 = cache.hooks().pack(x1);
  EXPECT_NE(std::get<t::TensorId>(p0), std::get<t::TensorId>(p1));
  EXPECT_EQ(cache.tracked_entries(), 2u);
  // Unpacking in the right record works; the wrong record throws.
  EXPECT_NO_THROW(cache.hooks().unpack(p1));
  EXPECT_THROW(cache.hooks().unpack(p0), u::ContractViolation);
  cache.on_micro_batch(0);
  EXPECT_NO_THROW(cache.hooks().unpack(p0));
}

TEST_F(CacheTest, StepBeginResetsRecords) {
  auto cache = make_cache();
  auto x = activation("x");
  cache.hooks().pack(x);
  node_.simulator().run();
  EXPECT_EQ(cache.tracked_entries(), 1u);
  cache.on_step_begin();
  EXPECT_EQ(cache.tracked_entries(), 0u);
}

TEST_F(CacheTest, OffloaderRefusalFallsBackToKeep) {
  // CPU offloader with a tiny pinned pool refuses; cache keeps the tensor.
  node_.pinned_pool().resize(u::mib(1));
  core::CpuOffloader cpu_offloader(node_, factory_, {});
  core::TensorCache cache(node_.simulator(), cpu_offloader, {});
  auto x = activation("x");
  const auto packed = cache.hooks().pack(x);
  EXPECT_EQ(cache.entry_state(std::get<t::TensorId>(packed)),
            core::TensorCache::EntryState::kept);
  EXPECT_EQ(cache.stats().kept_offloader_refused, 1u);
  auto back = cache.hooks().unpack(packed);
  EXPECT_TRUE(same_storage(back, x));
}

TEST_F(CacheTest, StatsAccumulateBytes) {
  auto cache = make_cache();
  auto a = activation("a", 64);
  auto b = activation("b", 32);
  cache.hooks().pack(a);
  cache.hooks().pack(b);
  EXPECT_EQ(cache.stats().offloaded_bytes, a.bytes() + b.bytes());
  EXPECT_EQ(cache.stats().packs, 2u);
}

// ---------------------------------------------------------------------------
// Replay fast path: the dense slot-indexed entries Executor::replay drives
// (pack decisions resolved at record time, states/forwarding/release
// re-evaluated live). Each test mirrors a trace-path behaviour above.
// ---------------------------------------------------------------------------

TEST_F(CacheTest, ReplayStoreEvictsAndReloadsByEntryIndex) {
  auto cache = make_cache();
  auto& alloc = *node_.gpu(0).allocator;
  auto x = activation("x");
  const core::TensorCache::ReplayEntryInit init{
      t::TensorId{1001, x.shape().hash()}, x.label(), x.shape(), x.dtype(),
      x.bytes()};
  cache.replay_begin(std::span(&init, 1));

  cache.replay_pack_store(0, x);
  EXPECT_EQ(cache.stats().offload_started, 1u);
  EXPECT_EQ(cache.replay_entry_state(0),
            core::TensorCache::EntryState::offloading);
  x.reset();  // the planner's handle drops; the entry holds the last ref
  node_.simulator().run();
  // Store completed: the entry released its strong reference (eviction).
  EXPECT_EQ(cache.replay_entry_state(0),
            core::TensorCache::EntryState::offloaded);
  EXPECT_EQ(alloc.live(hw::MemoryTag::activation), 0);

  // Miss load by dense index: consumers gate on the reload completion.
  auto back = cache.replay_unpack(0);
  ASSERT_TRUE(back.defined());
  EXPECT_EQ(cache.stats().miss_loads, 1u);
  EXPECT_EQ(cache.replay_entry_state(0),
            core::TensorCache::EntryState::loading);
  EXPECT_FALSE(back.storage()->ready_event()->done());
  node_.simulator().run();
  EXPECT_EQ(cache.replay_entry_state(0),
            core::TensorCache::EntryState::loaded);

  back.reset();
  cache.replay_release(0);
  EXPECT_EQ(cache.stats().releases, 1u);
  EXPECT_EQ(offloader_.stats().releases, 1u);  // SSD extent trimmed
  EXPECT_EQ(node_.array(0).live_bytes(), 0);
  EXPECT_EQ(cache.replay_live_entries(), 0u);
  EXPECT_EQ(alloc.live(hw::MemoryTag::activation), 0);
}

TEST_F(CacheTest, ReplayForwardingServesInFlightStore) {
  auto cache = make_cache();
  auto x = activation("x");
  const core::TensorCache::ReplayEntryInit init{
      t::TensorId{1002, x.shape().hash()}, x.label(), x.shape(), x.dtype(),
      x.bytes()};
  cache.replay_begin(std::span(&init, 1));
  cache.replay_pack_store(0, x);

  // Backward arrives while the store drains: data forwarding hands the
  // in-memory reference back instead of waiting for the round trip.
  auto back = cache.replay_unpack(0);
  EXPECT_TRUE(same_storage(back, x));
  EXPECT_EQ(cache.stats().forwards, 1u);
  node_.simulator().run();
  // Forwarded entries stay resident once the store finishes.
  EXPECT_EQ(cache.replay_entry_state(0),
            core::TensorCache::EntryState::loaded);
  cache.replay_release(0);
  EXPECT_EQ(cache.stats().wasted_stores, 0u);
}

TEST_F(CacheTest, ReplayPrefetchSkipsReleasedAndResidentEntries) {
  auto cache = make_cache();
  auto a = activation("a");
  auto b = activation("b");
  const core::TensorCache::ReplayEntryInit inits[] = {
      {t::TensorId{1003, a.shape().hash()}, a.label(), a.shape(), a.dtype(),
       a.bytes()},
      {t::TensorId{1004, b.shape().hash()}, b.label(), b.shape(), b.dtype(),
       b.bytes()},
  };
  cache.replay_begin(inits);
  cache.replay_pack_store(0, a);
  cache.replay_pack_store(1, b);
  a.reset();
  b.reset();
  node_.simulator().run();  // both offloaded
  cache.replay_release(1);  // scope retired before its prefetch point

  const std::uint32_t candidates[] = {0, 1};
  cache.replay_prefetch(candidates);
  // Only the live offloaded entry starts a load.
  EXPECT_EQ(cache.stats().prefetch_loads, 1u);
  EXPECT_EQ(cache.replay_entry_state(0),
            core::TensorCache::EntryState::loading);
  node_.simulator().run();
  cache.replay_release(0);
  EXPECT_EQ(node_.array(0).live_bytes(), 0);
}

TEST_F(CacheTest, ReplayKeepStaysResidentAndWastedStoreTrimsDeferred) {
  auto cache = make_cache();
  auto kept = activation("kept");
  auto wasted = activation("wasted");
  const core::TensorCache::ReplayEntryInit inits[] = {
      {t::TensorId{1005, kept.shape().hash()}, kept.label(), kept.shape(),
       kept.dtype(), kept.bytes()},
      {t::TensorId{1006, wasted.shape().hash()}, wasted.label(),
       wasted.shape(), wasted.dtype(), wasted.bytes()},
  };
  cache.replay_begin(inits);

  cache.replay_pack_keep(0, kept, core::TensorCache::KeepReason::scope);
  EXPECT_EQ(cache.stats().kept_scope, 1u);
  EXPECT_TRUE(same_storage(cache.replay_unpack(0), kept));

  cache.replay_pack_store(1, wasted);
  // Scope ends before the store finishes: a wasted store whose extent trim
  // is deferred until the transfer drains.
  cache.replay_release(1);
  EXPECT_EQ(cache.stats().wasted_stores, 1u);
  node_.simulator().run();
  EXPECT_EQ(offloader_.stats().releases, 1u);
  EXPECT_EQ(node_.array(0).live_bytes(), 0);

  cache.replay_release(0);
  EXPECT_EQ(cache.replay_live_entries(), 0u);
}
