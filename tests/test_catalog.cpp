// Hardware catalog presets: the specs in hw/catalog.cpp are the ground truth
// every benchmark and example builds on, so pin them to the paper's Table II
// figures and check the presets stay internally consistent (ratings derived
// from specs, node arrays wired to the documented GPU indices).

#include <gtest/gtest.h>

#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/hw/node.hpp"
#include "ssdtrain/hw/pcie.hpp"
#include "ssdtrain/hw/ssd/endurance.hpp"
#include "ssdtrain/util/units.hpp"

namespace hw = ssdtrain::hw;
namespace cat = ssdtrain::hw::catalog;
namespace u = ssdtrain::util;

TEST(Catalog, A100PcieMatchesDataSheet) {
  const auto gpu = cat::a100_pcie_40gb();
  EXPECT_EQ(gpu.name, "A100-PCIe-40GB");
  EXPECT_DOUBLE_EQ(gpu.fp16_peak, u::tflops(312));
  EXPECT_DOUBLE_EQ(gpu.hbm_bandwidth, u::gbps(1555));
  EXPECT_EQ(gpu.memory_capacity, u::gib(40));
}

TEST(Catalog, A100SxmUpgradesMemoryNotCompute) {
  const auto pcie = cat::a100_pcie_40gb();
  const auto sxm = cat::a100_sxm_80gb();
  EXPECT_DOUBLE_EQ(sxm.fp16_peak, pcie.fp16_peak);
  EXPECT_GT(sxm.hbm_bandwidth, pcie.hbm_bandwidth);
  EXPECT_EQ(sxm.memory_capacity, u::gib(80));
}

TEST(Catalog, OptaneP5800xMatchesDataSheet) {
  const auto ssd = cat::optane_p5800x_1600gb();
  EXPECT_EQ(ssd.capacity, u::tb(1.6));
  EXPECT_DOUBLE_EQ(ssd.seq_write_bandwidth, u::gbps(6.1));
  EXPECT_DOUBLE_EQ(ssd.seq_read_bandwidth, u::gbps(7.2));
  EXPECT_DOUBLE_EQ(ssd.dwpd, 100.0);
}

TEST(Catalog, Samsung980ProSpecAgreesWithRating) {
  const auto ssd = cat::samsung_980pro_1tb();
  const auto rating = cat::samsung_980pro_rating();
  EXPECT_EQ(rating.capacity, ssd.capacity);
  EXPECT_DOUBLE_EQ(ssd.dwpd, rating.dwpd);
  EXPECT_DOUBLE_EQ(ssd.warranty_years, rating.warranty_years);
  // The rating encodes 600 TBW over the warranty.
  EXPECT_NEAR(rating.rated_host_writes(), static_cast<double>(u::tb(600)),
              1e6);
}

TEST(Catalog, PcieGen4x16LandsInMeasuredBand) {
  const auto bw = hw::effective_bandwidth(cat::pcie_gen4_x16());
  // Gen4 x16 raw is 32 GB/s per direction; ~85% is usable for large DMA.
  EXPECT_GT(bw, u::gbps(24));
  EXPECT_LT(bw, u::gbps(32));
}

TEST(Catalog, Table2NodeHasAsymmetricRaidArrays) {
  const auto node = cat::table2_evaluation_node();
  EXPECT_EQ(node.gpu_count, 2);
  ASSERT_EQ(node.arrays.size(), 2u);
  EXPECT_EQ(node.arrays[0].size(), 3u);   // GPU 0: 3-disk RAID0
  EXPECT_EQ(node.arrays[1].size(), 4u);   // GPU 1: 4-disk RAID0 (measured)
  EXPECT_EQ(cat::table2_measured_gpu, 1);
  for (const auto& array : node.arrays) {
    for (const auto& ssd : array) {
      EXPECT_EQ(ssd.name, cat::optane_p5800x_1600gb().name);
    }
  }
}

TEST(Catalog, Table2NodeConstructs) {
  hw::TrainingNode node(cat::table2_evaluation_node());
  EXPECT_EQ(node.gpu_count(), 2);
  EXPECT_TRUE(node.has_array(0));
  EXPECT_TRUE(node.has_array(1));
}

TEST(Catalog, SingleGpuNodeScalesArraySize) {
  const auto none = cat::single_gpu_node(0);
  ASSERT_EQ(none.arrays.size(), 1u);
  EXPECT_TRUE(none.arrays[0].empty());

  const auto four = cat::single_gpu_node(4);
  ASSERT_EQ(four.arrays.size(), 1u);
  EXPECT_EQ(four.arrays[0].size(), 4u);
  EXPECT_EQ(four.gpu_count, 1);
}

TEST(Catalog, MeasuredGpuArrayAbsorbsPcieLink) {
  // The paper pairs each A100 with enough SSDs that the array's sequential
  // write rate is not dwarfed by the PCIe link: the 4-disk array sustains
  // most of a Gen4 x16 link.
  const auto node = cat::table2_evaluation_node();
  const auto ssd = cat::optane_p5800x_1600gb();
  const double array_write =
      static_cast<double>(node.arrays[1].size()) * ssd.seq_write_bandwidth;
  EXPECT_GT(array_write, 0.8 * hw::effective_bandwidth(node.pcie));
}
