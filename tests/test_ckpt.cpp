// Crash-consistent checkpointing: manifest serdes (byte-stable round trip,
// malformed-buffer rejection grid), the CheckpointWriter's shadow-write +
// atomic-flip commit protocol (torn newest falls back to the previous
// committed generation; all-corrupt cold-restarts), Young–Daly cadence
// arithmetic, policy validation, and the session-level recovery driver: a
// seeded stage-crash with lose=state restores the last committed checkpoint,
// rolls the logical step back, and then replays the lost steps bit-identically
// to an uninterrupted run (excluding the cumulative offloader/cache fields).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ssdtrain/ckpt/manifest.hpp"
#include "ssdtrain/ckpt/policy.hpp"
#include "ssdtrain/ckpt/writer.hpp"
#include "ssdtrain/fault/fault.hpp"
#include "ssdtrain/fault/injector.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/hw/node.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/cluster_session.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace ck = ssdtrain::ckpt;
namespace f = ssdtrain::fault;
namespace hw = ssdtrain::hw;
namespace m = ssdtrain::modules;
namespace rt = ssdtrain::runtime;
namespace u = ssdtrain::util;

namespace {

// ---------------------------------------------------------------------------
// Manifest serdes

ck::CheckpointManifest sample_manifest() {
  ck::CheckpointManifest manifest;
  manifest.sequence = 7;
  manifest.step = 42;
  manifest.sim_time = 1.5e-3;
  manifest.shards = {
      {0, 0, u::mib(64), 6 * u::mib(64)},
      {1, 0, u::mib(64), 6 * u::mib(64)},
      {0, 1, u::mib(32), 6 * u::mib(32)},
  };
  return manifest;
}

// Test-local FNV-1a mirror, so corruption tests can re-seal a blob after
// mutating the payload and reach the checks *behind* the checksum.
std::uint64_t fnv1a(const std::string& data, std::size_t from) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::size_t i = from; i < data.size(); ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

constexpr std::size_t kHeaderSize = 8 + 4 + 8;  // magic + version + checksum

void reseal(std::string& blob) {
  const std::uint64_t checksum = fnv1a(blob, kHeaderSize);
  for (int i = 0; i < 8; ++i) {
    blob[12 + static_cast<std::size_t>(i)] =
        static_cast<char>(checksum >> (8 * i));
  }
}

TEST(CkptManifest, RoundTripIsByteStable) {
  const ck::CheckpointManifest manifest = sample_manifest();
  const std::string blob = serialize_manifest(manifest);

  ck::CheckpointManifest back;
  std::string error;
  ASSERT_TRUE(deserialize_manifest(blob, back, &error)) << error;
  EXPECT_EQ(back, manifest);
  EXPECT_EQ(back.total_bytes(), manifest.total_bytes());
  EXPECT_EQ(back.gpu_bytes(0), 7 * u::mib(64) + 7 * u::mib(32));
  EXPECT_EQ(back.gpu_bytes(1), 7 * u::mib(64));

  // Re-serialization of the parsed manifest is byte-identical.
  EXPECT_EQ(serialize_manifest(back), blob);
}

TEST(CkptManifest, EmptyShardListRoundTrips) {
  ck::CheckpointManifest manifest;
  manifest.sequence = 1;
  ck::CheckpointManifest back;
  ASSERT_TRUE(deserialize_manifest(serialize_manifest(manifest), back));
  EXPECT_EQ(back, manifest);
}

TEST(CkptManifest, RejectsEveryTruncation) {
  const std::string blob = serialize_manifest(sample_manifest());
  for (std::size_t len = 0; len < blob.size(); ++len) {
    ck::CheckpointManifest out;
    std::string error;
    EXPECT_FALSE(
        deserialize_manifest(std::string_view(blob).substr(0, len), out,
                             &error))
        << "accepted a manifest truncated to " << len << " bytes";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CkptManifest, RejectsBadMagic) {
  std::string blob = serialize_manifest(sample_manifest());
  blob[0] = 'X';
  ck::CheckpointManifest out;
  std::string error;
  EXPECT_FALSE(deserialize_manifest(blob, out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(CkptManifest, RejectsWrongVersion) {
  std::string blob = serialize_manifest(sample_manifest());
  blob[8] = static_cast<char>(ck::kManifestFormatVersion + 1);
  ck::CheckpointManifest out;
  std::string error;
  EXPECT_FALSE(deserialize_manifest(blob, out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CkptManifest, RejectsChecksumFlipAnywhereInPayload) {
  const std::string blob = serialize_manifest(sample_manifest());
  for (std::size_t i = kHeaderSize; i < blob.size(); ++i) {
    std::string corrupt = blob;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    ck::CheckpointManifest out;
    std::string error;
    EXPECT_FALSE(deserialize_manifest(corrupt, out, &error))
        << "accepted a bit flip at byte " << i;
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  }
}

TEST(CkptManifest, RejectsTornShadowRegion) {
  // A torn shadow write truncates before the trailing commit marker. Zero
  // the marker and re-seal the checksum so the tear itself — not the
  // checksum — is what the reader has to catch.
  std::string blob = serialize_manifest(sample_manifest());
  blob.back() = 0;
  reseal(blob);
  ck::CheckpointManifest out;
  std::string error;
  EXPECT_FALSE(deserialize_manifest(blob, out, &error));
  EXPECT_NE(error.find("torn"), std::string::npos) << error;
}

TEST(CkptManifest, RejectsImplausibleShardCount) {
  ck::CheckpointManifest manifest;  // no shards: count field is last u32
  std::string blob = serialize_manifest(manifest);
  const std::size_t count_at = kHeaderSize + 8 + 8 + 8;
  blob[count_at + 3] = static_cast<char>(0x7f);  // ~2 billion shards
  reseal(blob);
  ck::CheckpointManifest out;
  std::string error;
  EXPECT_FALSE(deserialize_manifest(blob, out, &error));
  EXPECT_NE(error.find("shard count"), std::string::npos) << error;
}

TEST(CkptManifest, RejectsTrailingBytes) {
  std::string blob = serialize_manifest(sample_manifest());
  blob += '\0';
  ck::CheckpointManifest out;
  std::string error;
  EXPECT_FALSE(deserialize_manifest(blob, out, &error));
}

// ---------------------------------------------------------------------------
// Young–Daly cadence + policy validation

TEST(CkptPolicy, YoungDalyClosedForm) {
  EXPECT_DOUBLE_EQ(ck::young_daly_interval(2.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(ck::young_daly_interval(0.5, 3600.0), 60.0);
  // Longer MTBF or cheaper checkpoints stretch the interval.
  EXPECT_GT(ck::young_daly_interval(2.0, 1000.0),
            ck::young_daly_interval(2.0, 100.0));
  EXPECT_LT(ck::young_daly_interval(1.0, 100.0),
            ck::young_daly_interval(2.0, 100.0));
}

TEST(CkptPolicy, ValidateAcceptsEachSingleMode) {
  ck::CheckpointPolicy disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_NO_THROW(disabled.validate());

  ck::CheckpointPolicy steps;
  steps.every_steps = 4;
  EXPECT_TRUE(steps.enabled());
  EXPECT_NO_THROW(steps.validate());

  ck::CheckpointPolicy seconds;
  seconds.every_seconds = 0.5;
  EXPECT_NO_THROW(seconds.validate());

  ck::CheckpointPolicy young_daly;
  young_daly.auto_interval = true;
  young_daly.mtbf = 100.0;
  EXPECT_NO_THROW(young_daly.validate());
}

TEST(CkptPolicy, ValidateRejectsContradictions) {
  ck::CheckpointPolicy both;
  both.every_steps = 4;
  both.every_seconds = 0.5;
  EXPECT_THROW(both.validate(), u::ContractViolation);

  ck::CheckpointPolicy steps_and_auto;
  steps_and_auto.every_steps = 4;
  steps_and_auto.auto_interval = true;
  steps_and_auto.mtbf = 100.0;
  EXPECT_THROW(steps_and_auto.validate(), u::ContractViolation);

  ck::CheckpointPolicy auto_without_mtbf;
  auto_without_mtbf.auto_interval = true;
  EXPECT_THROW(auto_without_mtbf.validate(), u::ContractViolation);

  ck::CheckpointPolicy negative;
  negative.every_steps = -1;
  EXPECT_THROW(negative.validate(), u::ContractViolation);
}

// ---------------------------------------------------------------------------
// CheckpointWriter: commit protocol, retention, torn fallback

constexpr int kGpu = hw::catalog::table2_measured_gpu;

TEST(CkptWriter, CommitWritesRealBytesAndRetainsTwoGenerations) {
  hw::TrainingNode node(hw::catalog::table2_evaluation_node());
  const u::Bytes before = node.array(kGpu).host_bytes_written();

  ck::CheckpointWriter writer(node, /*use_gds=*/true);
  writer.add_stage(kGpu, 0, u::mib(64), 6 * u::mib(64));
  ASSERT_EQ(writer.stage_count(), 1u);

  const ck::CheckpointCommit first = writer.write(2);
  EXPECT_EQ(first.sequence, 1u);
  EXPECT_EQ(first.step, 2u);
  EXPECT_GT(first.time, 0.0);
  EXPECT_GT(first.bytes, 7 * u::mib(64));  // bulk + manifest blob
  EXPECT_EQ(writer.committed_manifests(), 1u);
  EXPECT_EQ(writer.last_commit_step(), 2u);
  EXPECT_EQ(writer.last_commit_time(), first.committed_at);

  // Every checkpoint byte ages the NAND through record_write.
  EXPECT_GE(node.array(kGpu).host_bytes_written() - before, 7 * u::mib(64));

  writer.write(4);
  writer.write(6);
  EXPECT_EQ(writer.committed_count(), 3u);
  // Retention keeps two generations: the newest plus its fallback.
  EXPECT_EQ(writer.committed_manifests(), 2u);
  EXPECT_EQ(writer.last_commit_step(), 6u);
  EXPECT_GE(writer.bytes_written(), 3 * 7 * u::mib(64));

  // The trace timeline saw per-stage shard writes and whole-commit spans.
  EXPECT_FALSE(writer.events().empty());
  for (const ck::CheckpointEvent& ev : writer.events()) {
    EXPECT_EQ(ev.kind, ck::CheckpointEvent::Kind::write);
    EXPECT_GE(ev.end, ev.start);
  }
}

TEST(CkptWriter, TornNewestFallsBackToPreviousCommit) {
  hw::TrainingNode node(hw::catalog::table2_evaluation_node());
  ck::CheckpointWriter writer(node, /*use_gds=*/true);
  writer.add_stage(kGpu, 0, u::mib(64), 6 * u::mib(64));

  writer.write(5);
  writer.write(10);
  writer.corrupt_committed(0);  // tear the newest generation

  const ck::RestoreResult restore = writer.restore({kGpu});
  EXPECT_TRUE(restore.restored);
  EXPECT_EQ(restore.step, 5u);
  EXPECT_EQ(restore.manifests_rejected, 1);
  EXPECT_GT(restore.time, 0.0);
  EXPECT_GT(restore.bytes, 0);
  // The torn generation no longer counts as the newest valid commit.
  EXPECT_EQ(writer.last_commit_step(), 5u);
}

TEST(CkptWriter, AllGenerationsCorruptMeansColdRestart) {
  hw::TrainingNode node(hw::catalog::table2_evaluation_node());
  ck::CheckpointWriter writer(node, /*use_gds=*/true);
  writer.add_stage(kGpu, 0, u::mib(64), 6 * u::mib(64));

  writer.write(3);
  writer.write(6);
  writer.corrupt_committed(0);
  writer.corrupt_committed(1);

  const ck::RestoreResult restore = writer.restore({kGpu});
  EXPECT_FALSE(restore.restored);
  EXPECT_EQ(restore.step, 0u);
  EXPECT_EQ(restore.manifests_rejected, 2);
}

TEST(CkptWriter, RestoreBeforeAnyCommitColdRestarts) {
  hw::TrainingNode node(hw::catalog::table2_evaluation_node());
  ck::CheckpointWriter writer(node, /*use_gds=*/true);
  writer.add_stage(kGpu, 0, u::mib(64), 6 * u::mib(64));

  const ck::RestoreResult restore = writer.restore({kGpu});
  EXPECT_FALSE(restore.restored);
  EXPECT_EQ(restore.step, 0u);
  EXPECT_EQ(restore.manifests_rejected, 0);
}

// ---------------------------------------------------------------------------
// Session-level checkpointing and recovery

rt::SessionConfig small_config(m::ModelConfig model, rt::Strategy strategy) {
  rt::SessionConfig config;
  config.model = std::move(model);
  config.parallel.tensor_parallel = 2;
  config.strategy = strategy;
  return config;
}

/// The invariant (non-cumulative) StepStats fields: everything the
/// acceptance contract requires to match between a replayed post-recovery
/// step and the same logical step of an uninterrupted run. Byte and count
/// fields must be exactly equal; time-valued fields are durations computed
/// as differences of absolute simulator timestamps, and the crashed run
/// executes its replayed steps at a different absolute offset, so those
/// compare at DOUBLE_EQ (4-ULP) precision — the replay itself is exact, the
/// last-bit wiggle is the t_end - t_start subtraction. loaded_bytes,
/// cache.*, and offloader_totals.* are cumulative across the session's
/// whole life (including rolled-back work), so they are excluded.
void expect_time_equal(double a, double b) {
  EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)));
}

void expect_replayed_step_equal(const rt::StepStats& a, const rt::StepStats& b,
                                const std::string& what) {
  SCOPED_TRACE(what);
  expect_time_equal(a.step_time, b.step_time);
  expect_time_equal(a.drain_time, b.drain_time);
  expect_time_equal(a.optimizer_time, b.optimizer_time);
  EXPECT_EQ(a.activation_peak, b.activation_peak);
  EXPECT_EQ(a.total_peak, b.total_peak);
  EXPECT_EQ(a.weights_live, b.weights_live);
  EXPECT_EQ(a.executed_flops, b.executed_flops);
  expect_time_equal(a.compute_busy, b.compute_busy);
  EXPECT_EQ(a.offloaded_bytes, b.offloaded_bytes);
  EXPECT_EQ(a.ssd_host_written, b.ssd_host_written);
  expect_time_equal(a.checkpoint_time, b.checkpoint_time);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  expect_time_equal(a.restore_time, b.restore_time);
  EXPECT_EQ(a.rollback_steps, b.rollback_steps);
  expect_time_equal(a.lost_work_time, b.lost_work_time);
}

TEST(CkptSession, PeriodicPolicyCommitsOnCadence) {
  rt::SessionConfig config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  config.checkpoint.every_steps = 2;
  rt::TrainingSession session(config);
  ASSERT_NE(session.checkpoint_writer(), nullptr);

  const std::vector<rt::StepStats> steps = session.run_steps(6);
  for (int i = 0; i < 6; ++i) {
    SCOPED_TRACE("step " + std::to_string(i + 1));
    if ((i + 1) % 2 == 0) {
      EXPECT_GT(steps[static_cast<std::size_t>(i)].checkpoint_time, 0.0);
      EXPECT_GT(steps[static_cast<std::size_t>(i)].checkpoint_bytes, 0);
    } else {
      EXPECT_EQ(steps[static_cast<std::size_t>(i)].checkpoint_time, 0.0);
      EXPECT_EQ(steps[static_cast<std::size_t>(i)].checkpoint_bytes, 0);
    }
    EXPECT_EQ(steps[static_cast<std::size_t>(i)].restore_time, 0.0);
    EXPECT_EQ(steps[static_cast<std::size_t>(i)].rollback_steps, 0u);
  }
  EXPECT_EQ(session.logical_step(), 6u);
  EXPECT_EQ(session.checkpoint_writer()->committed_count(), 3u);

  const ck::GoodputReport report = session.goodput();
  EXPECT_EQ(report.checkpoints, 3u);
  EXPECT_EQ(report.restores, 0u);
  EXPECT_GT(report.checkpoint_time, 0.0);
  EXPECT_GT(report.checkpoint_bytes, 0);
  EXPECT_GT(report.useful_time, 0.0);
  EXPECT_GE(report.wall_clock,
            report.useful_time + report.checkpoint_time);
  EXPECT_GT(report.goodput(), 0.0);
  EXPECT_LT(report.goodput(), 1.0);
}

TEST(CkptSession, NoPolicyHasZeroOverheadAndFullGoodput) {
  rt::SessionConfig config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  rt::TrainingSession session(config);
  EXPECT_EQ(session.checkpoint_writer(), nullptr);

  for (const rt::StepStats& stats : session.run_steps(3)) {
    EXPECT_EQ(stats.checkpoint_time, 0.0);
    EXPECT_EQ(stats.checkpoint_bytes, 0);
    EXPECT_EQ(stats.restore_time, 0.0);
    EXPECT_EQ(stats.rollback_steps, 0u);
    EXPECT_EQ(stats.lost_work_time, 0.0);
  }
  const ck::GoodputReport report = session.goodput();
  EXPECT_EQ(report.checkpoints, 0u);
  EXPECT_EQ(report.checkpoint_time, 0.0);
  EXPECT_EQ(report.restore_time, 0.0);
  EXPECT_GT(report.useful_time, 0.0);
  EXPECT_GT(report.goodput(), 0.0);
}

TEST(CkptSession, AutoModeUsesYoungDalyInterval) {
  rt::SessionConfig config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  config.checkpoint.auto_interval = true;
  config.checkpoint.mtbf = 1000.0;
  rt::TrainingSession session(config);

  // The first boundary commits unconditionally (cost measurement); after
  // that, commits wait out sqrt(2*C*MTBF) — far longer than these tiny
  // simulated steps, so no further commit happens.
  const std::vector<rt::StepStats> steps = session.run_steps(4);
  EXPECT_GT(steps[0].checkpoint_time, 0.0);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(steps[static_cast<std::size_t>(i)].checkpoint_time, 0.0);
  }
  EXPECT_EQ(session.checkpoint_writer()->committed_count(), 1u);
}

TEST(CkptSession, LoseStateWithoutPolicyIsRejectedAtConstruction) {
  rt::SessionConfig config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.at = 0.001;
  crash.duration = 0.01;
  crash.lose = f::CrashLoss::state;
  config.faults.specs = {crash};
  EXPECT_THROW(rt::TrainingSession session(config), u::ContractViolation);

  // With a policy, the same config constructs fine.
  config.checkpoint.every_steps = 1;
  EXPECT_NO_THROW(rt::TrainingSession session(config));
}

TEST(CkptCluster, LoseStateWithoutPolicyIsRejectedAtConstruction) {
  rt::ClusterConfig config;
  config.model = m::bert_config(2048, 2, 2);
  config.parallel.pipeline_parallel = 2;
  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.gpu = 0;
  crash.at = 0.001;
  crash.duration = 0.01;
  crash.lose = f::CrashLoss::state;
  config.faults.specs = {crash};
  EXPECT_THROW(rt::ClusterSession session(std::move(config)),
               u::ContractViolation);
}

TEST(CkptSession, TriggeredLoseStateWithoutPolicyFailsLoudly) {
  // The constructor guard only sees config specs; a crash injected through
  // trigger() must still refuse to silently continue without a checkpoint.
  rt::SessionConfig config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  f::FaultSpec quiet;  // arms the injector without perturbing anything
  quiet.kind = f::FaultKind::ssd_latency;
  quiet.latency = 1e-9;
  quiet.duration = 1e-9;
  config.faults.specs = {quiet};
  rt::TrainingSession session(config);
  session.run_step();

  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.gpu = session.config().gpu_index;
  crash.duration = 0.001;
  crash.lose = f::CrashLoss::state;
  session.injector()->trigger(crash);
  EXPECT_THROW(session.run_step(), u::ContractViolation);
}

/// Arms the injector without perturbing anything: the window closes at
/// t=1ns, before any offload I/O can begin. Both runs of a crash-vs-clean
/// comparison carry it so the fault layer's presence is identical.
f::FaultConfig armed_but_quiet() {
  f::FaultSpec armed;
  armed.kind = f::FaultKind::ssd_latency;
  armed.latency = 1e-9;
  armed.duration = 1e-9;
  f::FaultConfig config;
  config.specs = {armed};
  config.seed = 11;
  return config;
}

/// The tentpole acceptance: a seeded destructive stage-crash mid-run rolls
/// back to the last committed checkpoint and then replays the lost steps
/// bit-identically to an uninterrupted run of the same configuration.
TEST(CkptRecovery, CrashRestoreRollbackReplaysBitIdentically) {
  rt::SessionConfig base =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  base.checkpoint.every_steps = 2;
  base.faults = armed_but_quiet();

  // Uninterrupted reference run: 6 steps, commits after steps 2/4/6.
  rt::TrainingSession reference(base);
  const std::vector<rt::StepStats> ref = reference.run_steps(6);

  rt::TrainingSession crashed(base);
  for (int i = 0; i < 3; ++i) {
    expect_replayed_step_equal(crashed.run_step(),
                               ref[static_cast<std::size_t>(i)],
                               "pre-crash step " + std::to_string(i + 1));
  }
  EXPECT_EQ(crashed.logical_step(), 3u);

  // Crash the stage at the step-3 boundary (after the step-2 commit): the
  // stream stalls for the restart window and the stage's state is wiped.
  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.gpu = base.gpu_index;
  crash.duration = 0.3 * ref[3].step_time;
  crash.lose = f::CrashLoss::state;
  crashed.injector()->trigger(crash);

  // Step 4 crashes: restore the step-2 commit and roll back two steps.
  const rt::StepStats crash_step = crashed.run_step();
  EXPECT_GT(crash_step.restore_time, 0.0);
  EXPECT_EQ(crash_step.rollback_steps, 2u);
  EXPECT_GT(crash_step.lost_work_time, 0.0);
  EXPECT_EQ(crashed.logical_step(), 2u);
  ASSERT_NE(crashed.checkpoint_writer(), nullptr);
  EXPECT_EQ(crashed.checkpoint_writer()->last_commit_step(), 2u);

  // Replay: the next four run_step calls re-execute logical steps 3..6 and
  // must be bit-identical to the reference run's steps 3..6, including the
  // re-aligned commit cadence (commits after logical steps 4 and 6).
  for (int i = 0; i < 4; ++i) {
    const rt::StepStats replayed = crashed.run_step();
    expect_replayed_step_equal(
        replayed, ref[static_cast<std::size_t>(i) + 2],
        "replayed logical step " + std::to_string(i + 3));
  }
  EXPECT_EQ(crashed.logical_step(), 6u);

  // Goodput ledger: one restore, two rolled-back steps, lost work > 0, and
  // goodput strictly below the uninterrupted run's.
  const ck::GoodputReport report = crashed.goodput();
  EXPECT_EQ(report.restores, 1u);
  EXPECT_EQ(report.rollback_steps, 2u);
  EXPECT_GT(report.restore_time, 0.0);
  EXPECT_GT(report.lost_work_time, 0.0);
  const ck::GoodputReport ref_report = reference.goodput();
  EXPECT_LT(report.goodput(), ref_report.goodput());
  EXPECT_GT(report.goodput(), 0.0);
}

TEST(CkptRecovery, CrashBeforeFirstCommitColdRestartsToStepZero) {
  rt::SessionConfig config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  config.checkpoint.every_steps = 100;  // never due in this short run
  f::FaultSpec quiet;
  quiet.kind = f::FaultKind::ssd_latency;
  quiet.latency = 1e-9;
  quiet.duration = 1e-9;
  config.faults.specs = {quiet};
  rt::TrainingSession session(config);

  session.run_steps(2);
  EXPECT_EQ(session.logical_step(), 2u);

  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.gpu = session.config().gpu_index;
  crash.duration = 0.001;
  crash.lose = f::CrashLoss::state;
  session.injector()->trigger(crash);

  const rt::StepStats stats = session.run_step();
  EXPECT_EQ(stats.rollback_steps, 3u);  // 2 committed-nothing steps + this
  EXPECT_EQ(session.logical_step(), 0u);
}

/// Cluster recovery: a destructive crash on one pipeline stage rolls every
/// stage back together (optimizer steps cannot be un-applied on survivors),
/// and the replayed steps match an uninterrupted cluster run.
TEST(CkptCluster, PipelineCrashRollsBackAllStagesAndReplays) {
  rt::ClusterConfig base;
  base.model = m::bert_config(2048, 2, 2);
  base.parallel.pipeline_parallel = 2;
  base.micro_batches = 2;
  base.checkpoint.every_steps = 2;
  base.faults = armed_but_quiet();

  rt::ClusterSession reference(base);
  std::vector<rt::ClusterStepStats> ref = reference.run_steps(6);

  rt::ClusterSession crashed(base);
  for (int i = 0; i < 3; ++i) {
    expect_replayed_step_equal(crashed.run_step().combined,
                               ref[static_cast<std::size_t>(i)].combined,
                               "pre-crash step " + std::to_string(i + 1));
  }

  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.gpu = 1;  // second pipeline stage
  crash.duration = 0.3 * ref[3].combined.step_time;
  crash.lose = f::CrashLoss::state;
  crashed.injector()->trigger(crash);

  const rt::ClusterStepStats crash_step = crashed.run_step();
  EXPECT_GT(crash_step.combined.restore_time, 0.0);
  EXPECT_EQ(crash_step.combined.rollback_steps, 2u);
  EXPECT_EQ(crashed.logical_step(), 2u);

  for (int i = 0; i < 4; ++i) {
    expect_replayed_step_equal(
        crashed.run_step().combined,
        ref[static_cast<std::size_t>(i) + 2].combined,
        "replayed logical step " + std::to_string(i + 3));
  }
  EXPECT_EQ(crashed.logical_step(), 6u);

  const ck::GoodputReport report = crashed.goodput();
  EXPECT_EQ(report.restores, 1u);
  EXPECT_GT(report.lost_work_time, 0.0);
}

}  // namespace
