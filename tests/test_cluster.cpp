// ClusterSession contracts: (1) a 1/1/1 cluster degenerates to exactly the
// TrainingSession composition — StepStats bit-identical, field for field;
// (2) deep pipelines (pp=4, tp=2, dp=2, ZeRO stage 2) run the whole model
// grid under all five strategies with coherent cluster measurements;
// (3) per-stage record/replay is bit-identical to tracing every step across
// the pipeline schedules; (4) the measured bubble converges to the closed
// form (pp-1)/(mb*v + pp-1) as contention vanishes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/parallel/zero.hpp"
#include "ssdtrain/runtime/cluster_session.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace rt = ssdtrain::runtime;
namespace m = ssdtrain::modules;
namespace sc = ssdtrain::sched;
namespace pl = ssdtrain::parallel;
namespace u = ssdtrain::util;

namespace {

void expect_equal(const rt::StepStats& a, const rt::StepStats& b,
                  const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.step_time, b.step_time);
  EXPECT_EQ(a.drain_time, b.drain_time);
  EXPECT_EQ(a.optimizer_time, b.optimizer_time);
  EXPECT_EQ(a.activation_peak, b.activation_peak);
  EXPECT_EQ(a.total_peak, b.total_peak);
  EXPECT_EQ(a.weights_live, b.weights_live);
  EXPECT_EQ(a.algorithmic_flops, b.algorithmic_flops);
  EXPECT_EQ(a.executed_flops, b.executed_flops);
  EXPECT_EQ(a.model_throughput, b.model_throughput);
  EXPECT_EQ(a.compute_busy, b.compute_busy);
  EXPECT_EQ(a.compute_utilization, b.compute_utilization);
  EXPECT_EQ(a.offloaded_bytes, b.offloaded_bytes);
  EXPECT_EQ(a.loaded_bytes, b.loaded_bytes);
  EXPECT_EQ(a.ssd_host_written, b.ssd_host_written);
  EXPECT_EQ(a.ssd_write_amplification, b.ssd_write_amplification);
  EXPECT_EQ(a.required_write_bandwidth, b.required_write_bandwidth);

  EXPECT_EQ(a.cache.packs, b.cache.packs);
  EXPECT_EQ(a.cache.unpacks, b.cache.unpacks);
  EXPECT_EQ(a.cache.dedup_hits, b.cache.dedup_hits);
  EXPECT_EQ(a.cache.offload_started, b.cache.offload_started);
  EXPECT_EQ(a.cache.kept_budget, b.cache.kept_budget);
  EXPECT_EQ(a.cache.kept_backward, b.cache.kept_backward);
  EXPECT_EQ(a.cache.kept_scope, b.cache.kept_scope);
  EXPECT_EQ(a.cache.forwards, b.cache.forwards);
  EXPECT_EQ(a.cache.prefetch_loads, b.cache.prefetch_loads);
  EXPECT_EQ(a.cache.miss_loads, b.cache.miss_loads);
  EXPECT_EQ(a.cache.wasted_stores, b.cache.wasted_stores);
  EXPECT_EQ(a.cache.releases, b.cache.releases);
  EXPECT_EQ(a.cache.offloaded_bytes, b.cache.offloaded_bytes);
  EXPECT_EQ(a.cache.kept_bytes, b.cache.kept_bytes);

  EXPECT_EQ(a.offloader_totals.stores, b.offloader_totals.stores);
  EXPECT_EQ(a.offloader_totals.loads, b.offloader_totals.loads);
  EXPECT_EQ(a.offloader_totals.bytes_stored, b.offloader_totals.bytes_stored);
  EXPECT_EQ(a.offloader_totals.bytes_loaded, b.offloader_totals.bytes_loaded);
  EXPECT_EQ(a.offloader_totals.releases, b.offloader_totals.releases);
  EXPECT_EQ(a.offloader_totals.failed_stores,
            b.offloader_totals.failed_stores);
}

std::vector<m::ModelConfig> model_grid(int layers) {
  return {
      m::bert_config(2048, layers, 2),
      m::gpt_config(2048, layers, 2),
      m::t5_config(2048, layers, 2),
      m::gpt_moe_config(2048, layers, 2, /*num_experts=*/4, /*top_k=*/2),
      m::gpt_gqa_config(2048, layers, 2),
  };
}

std::vector<rt::Strategy> all_strategies() {
  return {rt::Strategy::keep_in_gpu, rt::Strategy::ssdtrain,
          rt::Strategy::ssdtrain_cpu, rt::Strategy::recompute_full,
          rt::Strategy::ssdtrain_recompute};
}

}  // namespace

// With pp = tp = dp = 1 the session must degenerate to exactly the
// TrainingSession composition: same machine, same schedule, same planner
// and cache — StepStats bit-identical every step.
TEST(ClusterIdentity, DegenerateClusterMatchesTrainingSession) {
  for (const auto& model : model_grid(2)) {
    for (rt::Strategy strategy : all_strategies()) {
      const std::string what =
          model.name + " / " + std::string(to_string(strategy));

      rt::SessionConfig single_cfg;
      single_cfg.model = model;
      single_cfg.node = ssdtrain::hw::catalog::cluster_node(1, 4);
      single_cfg.gpu_index = 0;
      single_cfg.strategy = strategy;
      single_cfg.micro_batches = 2;
      rt::TrainingSession single(std::move(single_cfg));

      rt::ClusterConfig cluster_cfg;
      cluster_cfg.model = model;
      cluster_cfg.strategy = strategy;
      cluster_cfg.micro_batches = 2;
      rt::ClusterSession cluster(std::move(cluster_cfg));
      ASSERT_EQ(cluster.gpu_count(), 1) << what;
      ASSERT_EQ(cluster.virtual_stage_count(), 1) << what;

      for (int step = 0; step < 3; ++step) {
        const auto a = single.run_step();
        const auto b = cluster.run_step();
        expect_equal(a, b.combined, what + " step " + std::to_string(step));
        ASSERT_EQ(b.per_stage.size(), 1u) << what;
      }
    }
  }
}

// The acceptance grid: every model under every strategy on a deep pipeline
// with TP sharding and ZeRO-2 data parallelism.
TEST(ClusterScale, ModelGridUnderEveryStrategyDeepPipeline) {
  for (const auto& model : model_grid(4)) {
    for (rt::Strategy strategy : all_strategies()) {
      const std::string what =
          model.name + " / " + std::string(to_string(strategy));
      SCOPED_TRACE(what);

      rt::ClusterConfig config;
      config.model = model;
      config.parallel.pipeline_parallel = 4;
      config.parallel.tensor_parallel = 2;
      config.parallel.data_parallel = 2;
      config.parallel.zero = pl::ZeroStage::stage2;
      config.strategy = strategy;
      config.micro_batches = 4;
      rt::ClusterSession cluster(std::move(config));
      ASSERT_EQ(cluster.gpu_count(), 4);
      ASSERT_EQ(cluster.virtual_stage_count(), 4);

      const auto steps = cluster.run_steps(2);
      for (const auto& step : steps) {
        EXPECT_GT(step.combined.step_time, 0.0);
        EXPECT_GT(step.combined.algorithmic_flops, 0.0);
        EXPECT_GT(step.pipeline_time, 0.0);
        EXPECT_GT(step.p2p_bytes, 0u);  // boundary activations crossed GPUs
        EXPECT_GT(step.dp_bytes, 0u);   // ZeRO-2 RS + AG on the DP fabric
        EXPECT_GE(step.measured_bubble, 0.0);
        EXPECT_LT(step.measured_bubble, 1.0);
        EXPECT_NEAR(step.ideal_bubble, 3.0 / 7.0, 1e-12);
        ASSERT_EQ(step.per_stage.size(), 4u);
        for (const auto& stage : step.per_stage) {
          EXPECT_GT(stage.stats.compute_busy, 0.0);
        }
      }
      // The stage peaks must differ from a monolithic run: each stage only
      // holds its layer slice.
      EXPECT_LT(steps[0].per_stage[3].stats.weights_live,
                4 * steps[0].per_stage[3].stats.activation_peak +
                    steps[0].combined.weights_live);
    }
  }
}

// Per-stage record/replay equivalence across the pipeline schedules: a
// cluster that replays each stage's StepProgram must match a cluster that
// traces the module tree every step, bit for bit, on every step.
TEST(ClusterReplay, TraceVsReplayEquivalenceAcrossSchedules) {
  struct GridPoint {
    sc::PipelineKind kind;
    int pp;
    int virtual_stages;
    int micro_batches;
  };
  const std::vector<GridPoint> grid = {
      {sc::PipelineKind::one_f_one_b, 2, 1, 4},
      {sc::PipelineKind::gpipe, 2, 1, 2},
      {sc::PipelineKind::interleaved_1f1b, 2, 2, 4},
  };
  for (const auto& point : grid) {
    for (rt::Strategy strategy :
         {rt::Strategy::keep_in_gpu, rt::Strategy::ssdtrain}) {
      const std::string what = std::string(sc::to_string(point.kind)) +
                               " pp=" + std::to_string(point.pp) +
                               " v=" + std::to_string(point.virtual_stages) +
                               " / " + std::string(to_string(strategy));

      rt::ClusterConfig config;
      config.model = m::gpt_config(2048, 4, 2);
      config.parallel.pipeline_parallel = point.pp;
      config.strategy = strategy;
      config.micro_batches = point.micro_batches;
      config.schedule = point.kind;
      config.virtual_stages = point.virtual_stages;

      rt::ClusterConfig traced_cfg = config;
      traced_cfg.use_replay = false;
      rt::ClusterSession traced(std::move(traced_cfg));
      rt::ClusterSession replayed(std::move(config));

      // Stage chunk c records on step c, so every stage replays from step
      // virtual_stages onward; two more steps exercise steady state.
      const int steps = point.virtual_stages + 2;
      for (int step = 0; step < steps; ++step) {
        const auto a = traced.run_step();
        const auto b = replayed.run_step();
        const std::string at = what + " step " + std::to_string(step);
        expect_equal(a.combined, b.combined, at);
        EXPECT_EQ(a.pipeline_time, b.pipeline_time) << at;
        EXPECT_EQ(a.measured_bubble, b.measured_bubble) << at;
        EXPECT_EQ(a.p2p_bytes, b.p2p_bytes) << at;
        EXPECT_EQ(a.dp_bytes, b.dp_bytes) << at;
        ASSERT_EQ(a.per_stage.size(), b.per_stage.size()) << at;
        for (std::size_t vs = 0; vs < a.per_stage.size(); ++vs) {
          expect_equal(a.per_stage[vs].stats, b.per_stage[vs].stats,
                       at + " stage " + std::to_string(vs));
        }
      }
      for (int vs = 0; vs < replayed.virtual_stage_count(); ++vs) {
        ASSERT_NE(replayed.program(vs), nullptr) << what;
        EXPECT_TRUE(replayed.program(vs)->replayable) << what;
        EXPECT_GT(replayed.program(vs)->ops.size(), 0u) << what;
      }
      // The trace-every-step cluster never records.
      for (int vs = 0; vs < traced.virtual_stage_count(); ++vs) {
        EXPECT_EQ(traced.program(vs), nullptr) << what;
      }
    }
  }
}

// More micro-batches fill the pipeline: the measured bubble must track the
// closed form downward and approach it as compute dwarfs the boundary
// transfers (keep-in-gpu, so no offload traffic competes for PCIe).
TEST(ClusterBubble, MeasuredBubbleTracksIdealAsContentionVanishes) {
  double previous = 1.0;
  for (int micro_batches : {2, 4, 8}) {
    rt::ClusterConfig config;
    // 8 layers per stage so the embedding/head stages stay balanced with
    // the middle ones — the convergence claim is about the schedule, not
    // about slicing imbalance.
    config.model = m::gpt_config(2048, 32, 4);
    config.parallel.pipeline_parallel = 4;
    config.strategy = rt::Strategy::keep_in_gpu;
    config.micro_batches = micro_batches;
    config.fabric_hop_latency = 0.0;
    rt::ClusterSession cluster(std::move(config));
    const auto step = cluster.run_steps(2).back();

    const double ideal = 3.0 / (micro_batches + 3.0);
    EXPECT_NEAR(step.ideal_bubble, ideal, 1e-12);
    EXPECT_LT(step.measured_bubble, previous);
    // Boundary sends are tiny next to 8 layers of compute; the residual
    // gap is the (real) transfer serialization plus slice imbalance.
    EXPECT_GE(step.measured_bubble, ideal - 1e-9);
    EXPECT_NEAR(step.measured_bubble, ideal, 0.08);
    previous = step.measured_bubble;
  }
}

// ZeRO sharding shrinks the optimizer and its fabric tail coherently:
// stage-2 moves strictly more fabric bytes than plain DP all-reduce
// (RS + AG vs one AR of the same volume is equal; with the param gather it
// is the same total) — pin the closed-form volumes instead.
TEST(ClusterZero, DpFabricTrafficMatchesClosedForm) {
  for (pl::ZeroStage zero : {pl::ZeroStage::none, pl::ZeroStage::stage1,
                             pl::ZeroStage::stage2, pl::ZeroStage::stage3}) {
    rt::ClusterConfig config;
    config.model = m::gpt_config(2048, 2, 2);
    config.parallel.data_parallel = 4;
    config.parallel.zero = zero;
    config.strategy = rt::Strategy::keep_in_gpu;
    rt::ClusterSession cluster(std::move(config));

    const auto param_bytes = static_cast<double>(
        m::build_model(cluster.config().model)->parameter_bytes(1));
    const double expected =
        pl::zero_dp_traffic_per_step(param_bytes, cluster.config().parallel);
    const auto step = cluster.run_step();
    EXPECT_NEAR(static_cast<double>(step.dp_bytes), expected,
                expected * 1e-9 + 16.0)
        << "zero stage " << static_cast<int>(zero);
  }
}

// ZeRO-Offload optimizer-state traffic rides the GDS paths and lengthens
// the step tail without touching compute.
TEST(ClusterZero, OptimizerStateOffloadAddsNvmeTraffic) {
  rt::ClusterConfig base;
  base.model = m::gpt_config(2048, 2, 2);
  base.parallel.data_parallel = 2;
  base.parallel.zero = pl::ZeroStage::stage2;
  base.strategy = rt::Strategy::keep_in_gpu;

  rt::ClusterConfig offloaded_cfg = base;
  offloaded_cfg.zero_offload_optimizer = true;
  rt::ClusterSession plain(std::move(base));
  rt::ClusterSession offloaded(std::move(offloaded_cfg));
  const auto a = plain.run_step();
  const auto b = offloaded.run_step();
  EXPECT_GT(b.combined.step_time + b.combined.drain_time,
            a.combined.step_time + a.combined.drain_time);
  EXPECT_EQ(a.combined.algorithmic_flops, b.combined.algorithmic_flops);
}

TEST(ClusterValidation, RejectsIndivisibleLayerSplit) {
  rt::ClusterConfig config;
  config.model = m::gpt_config(2048, 3, 2);  // 3 layers across 2 stages
  config.parallel.pipeline_parallel = 2;
  config.strategy = rt::Strategy::keep_in_gpu;
  EXPECT_THROW(rt::ClusterSession{std::move(config)},
               u::ContractViolation);
}

TEST(ClusterValidation, RejectsNodeSmallerThanPipeline) {
  rt::ClusterConfig config;
  config.model = m::gpt_config(2048, 4, 2);
  config.parallel.pipeline_parallel = 4;
  config.node = ssdtrain::hw::catalog::cluster_node(2, 1);
  config.strategy = rt::Strategy::keep_in_gpu;
  EXPECT_THROW(rt::ClusterSession{std::move(config)},
               u::ContractViolation);
}
