// Executor-level tests: weight registration, ready-event plumbing, CPU
// launch-ahead pacing, optimizer timing, and session plumbing that the
// integration tests don't isolate.

#include <gtest/gtest.h>

#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/executor.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/sched/schedule.hpp"
#include "ssdtrain/util/label.hpp"
#include "ssdtrain/util/units.hpp"

namespace rt = ssdtrain::runtime;
namespace m = ssdtrain::modules;
namespace hw = ssdtrain::hw;
namespace t = ssdtrain::tensor;
namespace u = ssdtrain::util;

namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : node_(hw::catalog::single_gpu_node(2)) {}

  rt::Executor make_executor(rt::ExecutorOptions options = {}) {
    ssdtrain::parallel::ParallelConfig parallel;
    return rt::Executor(node_, parallel, options);
  }

  hw::TrainingNode node_;
};

}  // namespace

TEST_F(ExecutorTest, WeightsAreCreatedOncePerKey) {
  auto exec = make_executor();
  auto w1 = exec.weight("layer0.fc1.weight", {4096, 4096}, t::DType::fp16);
  auto w2 = exec.weight("layer0.fc1.weight", {4096, 4096}, t::DType::fp16);
  EXPECT_TRUE(same_storage(w1, w2));
  // Weight + matching persistent gradient buffer were charged.
  EXPECT_EQ(node_.gpu(0).allocator->live(hw::MemoryTag::weights), w1.bytes());
  EXPECT_EQ(node_.gpu(0).allocator->live(hw::MemoryTag::gradients),
            w1.bytes());
  EXPECT_EQ(exec.weights_live(), w1.bytes());
}

TEST_F(ExecutorTest, ActivationReadyEventFiresWithProducerKernel) {
  auto exec = make_executor();
  auto out = exec.make_activation("y", {1 << 20}, t::DType::fp16);
  ASSERT_TRUE(out.storage()->ready_event() != nullptr);
  EXPECT_FALSE(out.storage()->ready_event()->done());
  exec.kernel("produce_y", 1e9, 0, out.bytes(), {});
  node_.simulator().run();
  EXPECT_TRUE(out.storage()->ready_event()->done());
}

TEST_F(ExecutorTest, ConsumedTensorGatesKernel) {
  auto exec = make_executor();
  auto a = exec.make_activation("a", {1 << 20}, t::DType::fp16);
  exec.kernel("produce_a", 1e12, 0, a.bytes(), {});
  exec.kernel("consume_a", 1e9, a.bytes(), 0, {a});
  auto marker = node_.gpu(0).compute_stream->record_marker();
  node_.simulator().run();
  // consume_a could not start before produce_a finished; the marker time
  // reflects serial execution of both kernels.
  hw::KernelDesc big{"", 1e12, 0, static_cast<u::Bytes>(a.bytes())};
  EXPECT_GT(marker->completion_time(),
            node_.gpu(0).gpu->kernel_time(big));
}

TEST_F(ExecutorTest, PacingBoundsLaunchAhead) {
  rt::ExecutorOptions options;
  options.max_launch_ahead = 4;
  auto exec = make_executor(options);
  for (int i = 0; i < 64; ++i) {
    exec.kernel(u::label("k", i), 1e10, 0, 0, {});
    EXPECT_LE(node_.gpu(0).compute_stream->queued(), 4u);
  }
  node_.simulator().run();
}

TEST_F(ExecutorTest, HookStackOverridesAndRestores) {
  auto exec = make_executor();
  EXPECT_EQ(exec.hooks(), nullptr);
  ssdtrain::graph::SavedTensorHooks hooks;
  hooks.pack = [](const t::Tensor& x) -> ssdtrain::graph::PackedValue {
    return x;
  };
  hooks.unpack = [](const ssdtrain::graph::PackedValue& v) -> t::Tensor {
    return std::get<t::Tensor>(v);
  };
  exec.push_hooks(&hooks);
  EXPECT_EQ(exec.hooks(), &hooks);
  exec.push_hooks(nullptr);
  EXPECT_EQ(exec.hooks(), nullptr);
  exec.pop_hooks();
  EXPECT_EQ(exec.hooks(), &hooks);
  exec.pop_hooks();
  EXPECT_EQ(exec.hooks(), nullptr);
  EXPECT_THROW(exec.pop_hooks(), u::ContractViolation);
}

TEST_F(ExecutorTest, OptimizerTimeIsMeasured) {
  rt::SessionConfig config;
  config.model = m::bert_config(4096, 2, 4);
  config.parallel.tensor_parallel = 2;
  config.strategy = rt::Strategy::keep_in_gpu;
  rt::TrainingSession session(std::move(config));
  const auto stats = session.run_step();
  // The fixed framework overhead alone is 40 ms.
  EXPECT_GT(stats.optimizer_time, u::ms(40));
  EXPECT_LT(stats.optimizer_time, stats.step_time);
}

TEST(SessionMisc, StrategyNames) {
  EXPECT_EQ(rt::to_string(rt::Strategy::keep_in_gpu), "keep-in-gpu");
  EXPECT_EQ(rt::to_string(rt::Strategy::ssdtrain), "ssdtrain");
  EXPECT_EQ(rt::to_string(rt::Strategy::ssdtrain_cpu), "ssdtrain-cpu");
  EXPECT_EQ(rt::to_string(rt::Strategy::recompute_full), "recompute-full");
  EXPECT_EQ(rt::to_string(rt::Strategy::ssdtrain_recompute),
            "ssdtrain+recompute");
}

TEST(SessionMisc, PlanOnlyEngagedForOffloadStrategies) {
  rt::SessionConfig keep;
  keep.model = m::bert_config(4096, 2, 4);
  keep.parallel.tensor_parallel = 2;
  keep.strategy = rt::Strategy::keep_in_gpu;
  rt::TrainingSession keep_session(std::move(keep));
  EXPECT_FALSE(keep_session.plan().has_value());
  EXPECT_EQ(keep_session.cache(), nullptr);

  rt::SessionConfig ssd;
  ssd.model = m::bert_config(4096, 2, 4);
  ssd.parallel.tensor_parallel = 2;
  ssd.strategy = rt::Strategy::ssdtrain;
  rt::TrainingSession ssd_session(std::move(ssd));
  EXPECT_TRUE(ssd_session.plan().has_value());
  EXPECT_NE(ssd_session.cache(), nullptr);
  EXPECT_NE(ssd_session.offloader(), nullptr);
}

TEST(SessionMisc, AverageCombinesSteps) {
  rt::StepStats a, b;
  a.step_time = 1.0;
  b.step_time = 3.0;
  a.activation_peak = u::gib(2);
  b.activation_peak = u::gib(4);
  a.algorithmic_flops = 100e12;
  b.algorithmic_flops = 100e12;
  a.offloaded_bytes = u::gb(10);
  b.offloaded_bytes = u::gb(20);
  const auto mean = rt::average({a, b});
  EXPECT_DOUBLE_EQ(mean.step_time, 2.0);
  EXPECT_NEAR(static_cast<double>(mean.activation_peak),
              static_cast<double>(u::gib(3)), 2.0);
  EXPECT_DOUBLE_EQ(mean.model_throughput, 100e12 / 2.0);
  EXPECT_NEAR(mean.required_write_bandwidth, 15e9, 1e6);
}

TEST(SessionMisc, AverageRejectsEmpty) {
  EXPECT_THROW(rt::average({}), u::ContractViolation);
}

TEST(SessionMisc, CpuStrategyResizesPinnedPool) {
  rt::SessionConfig config;
  config.model = m::bert_config(8192, 3, 8);
  config.parallel.tensor_parallel = 2;
  config.strategy = rt::Strategy::ssdtrain_cpu;
  rt::TrainingSession session(std::move(config));
  // Pool sized from the planner's budget with headroom (paper §III-A:
  // "the pool size is determined by profiling the first training step").
  EXPECT_GE(session.node().pinned_pool().pool_size(),
            session.plan()->offload_budget);
}
