// Fault injection and resilience: the --faults grammar, injector windows
// (exact capacity restore), offload retry/backoff/timeout accounting, the
// degradation ladder (keep-on-GPU after a permanently failed store,
// recompute fallback after data loss), program-invalidation semantics
// (timing faults never invalidate a recorded StepProgram, structural
// faults force a re-trace), and seeded determinism: identical fault seeds
// give bit-identical StepStats and fault logs, on the trace path and the
// replay path alike, across the model grid under every strategy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ssdtrain/core/offloader.hpp"
#include "ssdtrain/fault/fault.hpp"
#include "ssdtrain/fault/injector.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/cluster_session.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/sched/schedule.hpp"
#include "ssdtrain/tensor/tensor_id.hpp"
#include "ssdtrain/trace/chrome_trace.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace core = ssdtrain::core;
namespace f = ssdtrain::fault;
namespace hw = ssdtrain::hw;
namespace m = ssdtrain::modules;
namespace rt = ssdtrain::runtime;
namespace t = ssdtrain::tensor;
namespace sim = ssdtrain::sim;
namespace u = ssdtrain::util;

using ssdtrain::IoError;
using ssdtrain::IoErrorCode;

namespace {

// ---------------------------------------------------------------------------
// Grammar

TEST(FaultGrammar, ParsesKeyedSpecs) {
  const auto specs = f::parse_faults(
      "io-error:rate=0.01;"
      "ssd-derate:gpu=0,at=0.5,dur=0.2,factor=0.25;"
      "ssd-dropout:gpu=1,member=2,at=1.5;"
      "gpu-straggler:factor=1.5,at=0.1,dur=0.3;"
      "ssd-latency:latency=0.0002");
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].kind, f::FaultKind::io_error);
  EXPECT_EQ(specs[0].rate, 0.01);
  EXPECT_EQ(specs[0].gpu, -1);
  EXPECT_EQ(specs[0].duration, f::FaultSpec::open_ended);
  EXPECT_EQ(specs[1].kind, f::FaultKind::ssd_derate);
  EXPECT_EQ(specs[1].gpu, 0);
  EXPECT_EQ(specs[1].at, 0.5);
  EXPECT_EQ(specs[1].duration, 0.2);
  EXPECT_EQ(specs[1].factor, 0.25);
  EXPECT_EQ(specs[2].kind, f::FaultKind::ssd_dropout);
  EXPECT_EQ(specs[2].member, 2);
  EXPECT_EQ(specs[3].kind, f::FaultKind::gpu_straggler);
  EXPECT_EQ(specs[3].factor, 1.5);
  EXPECT_EQ(specs[4].kind, f::FaultKind::ssd_latency);
  EXPECT_EQ(specs[4].latency, 0.0002);
}

TEST(FaultGrammar, RoundTripsThroughToText) {
  const auto specs = f::parse_faults(
      "io-error:rate=0.01;"
      "ssd-derate:gpu=0,at=0.5,dur=0.2,factor=0.25;"
      "pcie-derate:factor=0.5;"
      "nvlink-derate:gpu=2,factor=0.75,at=1;"
      "dp-derate:factor=0.9;"
      "ssd-dropout:gpu=1,member=2,at=1.5;"
      "gpu-straggler:factor=1.5,at=0.1,dur=0.3;"
      "stage-crash:gpu=0,at=2,dur=0.5;"
      "ssd-latency:latency=0.0002");
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec.to_text());
    const auto reparsed = f::parse_faults(spec.to_text());
    ASSERT_EQ(reparsed.size(), 1u);
    EXPECT_EQ(reparsed[0].kind, spec.kind);
    EXPECT_EQ(reparsed[0].gpu, spec.gpu);
    EXPECT_EQ(reparsed[0].member, spec.member);
    EXPECT_EQ(reparsed[0].at, spec.at);
    EXPECT_EQ(reparsed[0].duration, spec.duration);
    EXPECT_EQ(reparsed[0].factor, spec.factor);
    EXPECT_EQ(reparsed[0].rate, spec.rate);
    EXPECT_EQ(reparsed[0].latency, spec.latency);
  }
}

TEST(FaultGrammar, EmptyTextMeansNoFaults) {
  // An empty --faults value (and stray separators) disable injection
  // rather than erroring: the CLI passes the flag through unconditionally.
  EXPECT_TRUE(f::parse_faults("").empty());
  EXPECT_TRUE(f::parse_faults(";").empty());
  EXPECT_EQ(f::parse_faults("io-error:rate=0.5;").size(), 1u);
}

TEST(FaultGrammar, MalformedSpecsAreContractViolations) {
  EXPECT_THROW((void)f::parse_faults("bogus-kind:rate=0.5"),
               u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("io-error:bogus=1"),
               u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("io-error:rate=2"),
               u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("io-error"), u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("ssd-derate:factor=1.5"),
               u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("gpu-straggler:factor=0.5"),
               u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("ssd-latency:latency=-1"),
               u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("stage-crash:at=1"),
               u::ContractViolation);  // needs a finite duration
  EXPECT_THROW((void)f::parse_faults("io-error:"), u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults("io-error:rate"), u::ContractViolation);
}

TEST(CrashSchedule, MeanGapConvergesToMtbfAndArrivalsIncrease) {
  const double mtbf = 3.0;
  f::CrashSchedule schedule(mtbf);
  double prev = 0.0;
  int arrivals = 0;
  // Walk 1000 expected arrivals in coarse chunks; the low-discrepancy
  // phases should pin the count within a few per mille of the horizon.
  const double horizon = 1000.0 * mtbf;
  for (double now = 0.0; now < horizon; now += mtbf / 4.0) {
    if (schedule.consume(now) > 0) {
      // Consuming strictly advances the upcoming arrival past `now`.
      EXPECT_GT(schedule.next(), now);
      EXPECT_GT(schedule.next(), prev);
      prev = schedule.next();
      ++arrivals;
    }
  }
  EXPECT_NEAR(arrivals, 1000, 5);
}

TEST(CrashSchedule, DeterministicAcrossInstances) {
  f::CrashSchedule a(0.7);
  f::CrashSchedule b(0.7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
    a.consume(a.next());
    b.consume(b.next());
  }
}

TEST(FaultGrammar, StageCrashLoseAndRecoverKeys) {
  // Defaults: a bare stage-crash is the historical free pause.
  const auto pause = f::parse_faults("stage-crash:gpu=0,at=1,dur=0.5");
  ASSERT_EQ(pause.size(), 1u);
  EXPECT_EQ(pause[0].lose, f::CrashLoss::none);
  EXPECT_EQ(pause[0].recover, f::CrashRecovery::unset);
  EXPECT_FALSE(pause[0].rolls_back());

  // lose=state demands rollback; the explicit recover key may confirm it.
  const auto destructive =
      f::parse_faults("stage-crash:gpu=1,at=2,dur=0.25,lose=state");
  ASSERT_EQ(destructive.size(), 1u);
  EXPECT_EQ(destructive[0].lose, f::CrashLoss::state);
  EXPECT_TRUE(destructive[0].rolls_back());
  const auto confirmed = f::parse_faults(
      "stage-crash:gpu=1,at=2,dur=0.25,lose=state,recover=rollback");
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_TRUE(confirmed[0].rolls_back());
  const auto resume =
      f::parse_faults("stage-crash:at=1,dur=0.5,recover=resume");
  ASSERT_EQ(resume.size(), 1u);
  EXPECT_FALSE(resume[0].rolls_back());

  // to_text round-trips the loss mode.
  EXPECT_NE(destructive[0].to_text().find("lose=state"), std::string::npos);
  const auto reparsed = f::parse_faults(destructive[0].to_text());
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0].lose, destructive[0].lose);
  EXPECT_EQ(reparsed[0].at, destructive[0].at);
  EXPECT_EQ(reparsed[0].duration, destructive[0].duration);
}

TEST(FaultGrammar, ContradictoryCrashSemanticsAreRejected) {
  // Resuming in place after the state was wiped is impossible...
  EXPECT_THROW((void)f::parse_faults(
                   "stage-crash:at=1,dur=0.5,lose=state,recover=resume"),
               u::ContractViolation);
  // ...and rolling back a crash that lost nothing wastes committed work.
  EXPECT_THROW((void)f::parse_faults(
                   "stage-crash:at=1,dur=0.5,lose=none,recover=rollback"),
               u::ContractViolation);
  // lose/recover are stage-crash-only keys.
  EXPECT_THROW((void)f::parse_faults("io-error:rate=0.1,lose=state"),
               u::ContractViolation);
  EXPECT_THROW((void)f::parse_faults(
                   "ssd-dropout:member=0,recover=rollback"),
               u::ContractViolation);
  // Unknown values for the new keys name the offending token.
  EXPECT_THROW((void)f::parse_faults("stage-crash:at=1,dur=0.5,lose=bogus"),
               u::ContractViolation);
  EXPECT_THROW(
      (void)f::parse_faults("stage-crash:at=1,dur=0.5,recover=bogus"),
      u::ContractViolation);
}

TEST(FaultGrammar, IoErrorSemantics) {
  EXPECT_FALSE(IoError{});
  EXPECT_TRUE(IoError{IoErrorCode::transient});
  EXPECT_TRUE(IoError{IoErrorCode::transient}.retryable());
  EXPECT_TRUE(IoError{IoErrorCode::timeout}.retryable());
  EXPECT_FALSE(IoError{IoErrorCode::data_lost}.retryable());
  EXPECT_TRUE(IoError{IoErrorCode::data_lost}.permanent());
  EXPECT_TRUE(IoError{IoErrorCode::device_lost}.permanent());
  EXPECT_FALSE(IoError{IoErrorCode::transient}.permanent());
}

// ---------------------------------------------------------------------------
// Injector windows

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : node_(hw::catalog::single_gpu_node(2)) {}

  f::FaultInjector& make_injector(std::vector<f::FaultSpec> specs,
                                  std::uint64_t seed = 1) {
    f::FaultConfig config;
    config.specs = std::move(specs);
    config.seed = seed;
    injector_ = std::make_unique<f::FaultInjector>(node_.simulator(),
                                                   std::move(config));
    injector_->bind_node(node_);
    return *injector_;
  }

  hw::TrainingNode node_;
  std::unique_ptr<f::FaultInjector> injector_;
};

TEST_F(FaultInjectorTest, DerateWindowRestoresExactCapacity) {
  auto& sim = node_.simulator();
  f::FaultSpec derate;
  derate.kind = f::FaultKind::ssd_derate;
  derate.at = 1.0;
  derate.duration = 1.0;
  derate.factor = 0.5;
  make_injector({derate});

  // The derate lands on the array's aggregate write channel in the
  // bandwidth network (nominal_write_bandwidth reports the healthy spec).
  auto& net = node_.network();
  const auto channel = node_.array(0).write_resource();
  const double base_write = net.capacity(channel);
  double mid_window = 0.0;
  double after_window = 0.0;
  sim.schedule_at(1.5, [&] { mid_window = net.capacity(channel); });
  sim.schedule_at(2.5, [&] { after_window = net.capacity(channel); });
  sim.run();
  EXPECT_EQ(mid_window, base_write * 0.5);
  // Window end must restore the base bit-for-bit, not approximately: the
  // no-fault replay-identity guarantee depends on exact 1.0 factors.
  EXPECT_EQ(after_window, base_write);
}

TEST_F(FaultInjectorTest, StragglerWindowScalesAndRestoresTimeScale) {
  auto& sim = node_.simulator();
  f::FaultSpec straggler;
  straggler.kind = f::FaultKind::gpu_straggler;
  straggler.at = 1.0;
  straggler.duration = 1.0;
  straggler.factor = 1.5;
  make_injector({straggler});

  double mid_window = 0.0;
  double after_window = 0.0;
  sim.schedule_at(1.5, [&] { mid_window = node_.gpu(0).gpu->time_scale(); });
  sim.schedule_at(2.5, [&] {
    after_window = node_.gpu(0).gpu->time_scale();
  });
  sim.run();
  EXPECT_EQ(mid_window, 1.5);
  EXPECT_EQ(after_window, 1.0);
}

TEST_F(FaultInjectorTest, IoAttemptDrawsOnlyInsideActiveWindows) {
  auto& sim = node_.simulator();
  f::FaultSpec errors;
  errors.kind = f::FaultKind::io_error;
  errors.rate = 1.0;
  errors.at = 1.0;
  errors.duration = 1.0;
  auto& injector = make_injector({errors});

  // Before the window: no failure and, crucially, no RNG consumption — the
  // draw sequence must track the I/O sequence, not wall-clock polling.
  EXPECT_FALSE(injector.io_attempt(0));
  std::vector<char> inside;
  sim.schedule_at(1.5, [&] {
    inside.push_back(injector.io_attempt(0) ? 1 : 0);
  });
  sim.schedule_at(2.5, [&] {
    inside.push_back(injector.io_attempt(0) ? 1 : 0);
  });
  sim.run();
  ASSERT_EQ(inside.size(), 2u);
  EXPECT_EQ(inside[0], 1);  // rate=1.0 inside the window always fails
  EXPECT_EQ(inside[1], 0);  // window over
}

TEST_F(FaultInjectorTest, DropoutBumpsStructuralEpochAndLogs) {
  auto& injector = make_injector({});
  EXPECT_EQ(injector.structural_epoch(), 0u);
  f::FaultSpec dropout;
  dropout.kind = f::FaultKind::ssd_dropout;
  dropout.gpu = 0;
  dropout.member = 0;
  injector.trigger(dropout);
  EXPECT_EQ(injector.structural_epoch(), 1u);
  EXPECT_TRUE(node_.array(0).member_failed(0));
  EXPECT_EQ(node_.array(0).surviving_members(), 1u);
  ASSERT_FALSE(injector.events().empty());
  EXPECT_EQ(injector.events().back().kind, f::FaultKind::ssd_dropout);

  // The last survivor is never dropped (total array loss is not modeled).
  f::FaultSpec again;
  again.kind = f::FaultKind::ssd_dropout;
  again.gpu = 0;
  again.member = 1;
  injector.trigger(again);
  EXPECT_EQ(node_.array(0).surviving_members(), 1u);
  EXPECT_EQ(injector.structural_epoch(), 1u);
}

TEST_F(FaultInjectorTest, NoTargetDropoutLogsWarningInsteadOfSilence) {
  auto& injector = make_injector({});
  f::FaultSpec dropout;
  dropout.kind = f::FaultKind::ssd_dropout;
  dropout.gpu = 99;  // matches nothing on a single-GPU node
  dropout.member = 0;
  injector.trigger(dropout);
  EXPECT_EQ(injector.structural_epoch(), 0u);
  EXPECT_EQ(node_.array(0).surviving_members(), 2u);
  ASSERT_FALSE(injector.events().empty());
  EXPECT_NE(injector.events().back().detail.find("fault matched no target"),
            std::string::npos);
}

TEST_F(FaultInjectorTest, NoTargetStageCrashLogsWarningInsteadOfSilence) {
  auto& injector = make_injector({});
  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.gpu = 99;
  crash.duration = 0.5;
  crash.lose = f::CrashLoss::state;
  injector.trigger(crash);
  EXPECT_EQ(injector.structural_epoch(), 0u);
  EXPECT_TRUE(injector.pending_crashes().empty());
  ASSERT_FALSE(injector.events().empty());
  EXPECT_NE(injector.events().back().detail.find("fault matched no target"),
            std::string::npos);
}

TEST_F(FaultInjectorTest, DestructiveCrashQueuesRecordWithoutEpochBump) {
  auto& injector = make_injector({});
  f::FaultSpec crash;
  crash.kind = f::FaultKind::stage_crash;
  crash.gpu = 0;
  crash.duration = 0.5;
  crash.lose = f::CrashLoss::state;
  injector.trigger(crash);

  // The recorded machine IS the restored machine: no structural epoch bump,
  // the StepProgram stays valid and the replayed steps stay bit-identical.
  EXPECT_EQ(injector.structural_epoch(), 0u);
  ASSERT_EQ(injector.pending_crashes().size(), 1u);
  EXPECT_EQ(injector.pending_crashes()[0].gpu, 0);
  EXPECT_EQ(injector.pending_crashes()[0].restart,
            injector.pending_crashes()[0].at + 0.5);

  const auto taken = injector.take_crashes();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(injector.pending_crashes().empty());

  // A pause-only crash (lose=none) keeps the historical structural path.
  f::FaultSpec pause;
  pause.kind = f::FaultKind::stage_crash;
  pause.gpu = 0;
  pause.duration = 0.5;
  injector.trigger(pause);
  EXPECT_EQ(injector.structural_epoch(), 1u);
  EXPECT_TRUE(injector.pending_crashes().empty());
}

TEST_F(FaultInjectorTest, FaultEventsRenderOntoChromeTrace) {
  auto& sim = node_.simulator();
  f::FaultSpec derate;
  derate.kind = f::FaultKind::ssd_derate;
  derate.at = 0.5;
  derate.duration = 1.0;
  derate.factor = 0.5;
  auto& injector = make_injector({derate});
  sim.schedule_at(3.0, [] {});
  sim.run();

  ssdtrain::trace::ChromeTrace trace;
  trace.append_fault_events(injector.events(), sim.now());
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("faults"), std::string::npos);
  EXPECT_NE(json.find("ssd-derate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Offloader retry / backoff / degradation ladder

class FaultOffloaderTest : public ::testing::Test {
 protected:
  FaultOffloaderTest()
      : node_(hw::catalog::single_gpu_node(2)),
        factory_(*node_.gpu(0).allocator) {}

  f::FaultInjector& make_injector(std::vector<f::FaultSpec> specs,
                                  std::uint64_t seed = 1) {
    f::FaultConfig config;
    config.specs = std::move(specs);
    config.seed = seed;
    injector_ = std::make_unique<f::FaultInjector>(node_.simulator(),
                                                   std::move(config));
    injector_->bind_node(node_);
    return *injector_;
  }

  /// Executes the pending window-begin events (open-ended windows at t=0)
  /// so that I/O issued from test code observes an active window, the way
  /// session-driven I/O does.
  void settle() { node_.simulator().run(); }

  static f::FaultSpec always_fail() {
    f::FaultSpec errors;
    errors.kind = f::FaultKind::io_error;
    errors.rate = 1.0;
    return errors;  // open-ended from t=0: every attempt fails
  }

  t::Tensor make_tensor(const char* name, u::Bytes mib_size = 64) {
    return factory_.cuda(name, {u::mib(mib_size) / 2}, t::DType::fp16,
                         hw::MemoryTag::activation);
  }

  hw::TrainingNode node_;
  t::TensorFactory factory_;
  std::unique_ptr<f::FaultInjector> injector_;
  t::IdAssigner ids_;
};

TEST_F(FaultOffloaderTest, ExhaustedRetriesKeepCountersAndLoseData) {
  core::SsdOffloaderConfig cfg;
  cfg.fault.injector = &make_injector({always_fail()});
  cfg.fault.max_attempts = 4;
  cfg.fault.initial_backoff = u::us(50);
  cfg.fault.backoff_multiplier = 2.0;
  core::SsdOffloader off(node_, factory_, cfg);
  settle();

  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  auto done = off.store(id, x, nullptr);
  ASSERT_TRUE(done.has_value());
  node_.simulator().run();

  // All four attempts failed; three were retries with exponential backoff
  // 50us * (1 + 2 + 4).
  EXPECT_TRUE((*done)->done());  // store completes (as a failure)
  EXPECT_EQ(off.stats().io_failures, 4u);
  EXPECT_EQ(off.stats().io_retries, 3u);
  EXPECT_EQ(off.stats().store_faults, 1u);
  EXPECT_DOUBLE_EQ(off.stats().retry_backoff_time, 350e-6);
  EXPECT_EQ(off.store_status(id).code, IoErrorCode::data_lost);

  // Degradation ladder, last rung: a load of the lost tensor is served by
  // the recompute fallback (no I/O — not counted as a load), and the
  // fallback is a structural event.
  auto ticket = off.load(id, "x'", {u::mib(64) / 2}, t::DType::fp16);
  node_.simulator().run();
  EXPECT_TRUE(ticket.done->done());
  EXPECT_EQ(off.stats().loads, 0u);
  EXPECT_EQ(off.stats().load_faults, 1u);
  EXPECT_EQ(off.stats().recompute_fallbacks, 1u);
  EXPECT_GT(off.stats().recompute_fallback_time, 0.0);
  EXPECT_GT(injector_->structural_epoch(), 0u);
  off.release(id);  // releasing a lost slot must not abort
  EXPECT_EQ(off.stats().releases, 1u);
}

TEST_F(FaultOffloaderTest, TransientErrorRetriesThenSucceeds) {
  f::FaultSpec errors = always_fail();
  errors.duration = 1e-4;  // window closes before the first retry lands
  core::SsdOffloaderConfig cfg;
  cfg.fault.injector = &make_injector({errors});
  cfg.fault.initial_backoff = u::ms(1);
  core::SsdOffloader off(node_, factory_, cfg);

  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  std::optional<sim::CompletionPtr> done;
  // Issue the store inside the window (the begin event at t=0 runs first).
  node_.simulator().schedule_at(0.0, [&] { done = off.store(id, x, nullptr); });
  node_.simulator().run();
  ASSERT_TRUE(done.has_value());

  EXPECT_TRUE((*done)->done());
  EXPECT_EQ(off.stats().io_retries, 1u);
  EXPECT_EQ(off.stats().io_failures, 1u);
  EXPECT_EQ(off.stats().store_faults, 0u);
  EXPECT_EQ(off.store_status(id).code, IoErrorCode::none);
  // The retried attempt still landed: the data loads back normally.
  auto ticket = off.load(id, "x'", {u::mib(64) / 2}, t::DType::fp16);
  node_.simulator().run();
  EXPECT_TRUE(ticket.done->done());
  EXPECT_EQ(off.stats().loads, 1u);
  EXPECT_EQ(off.stats().recompute_fallbacks, 0u);
}

TEST_F(FaultOffloaderTest, RetriesChargeWriteAmplification) {
  core::SsdOffloaderConfig cfg;
  cfg.fault.injector = &make_injector({always_fail()});
  cfg.fault.max_attempts = 4;
  core::SsdOffloader off(node_, factory_, cfg);
  settle();

  const u::Bytes before = node_.array(0).host_bytes_written();
  auto x = make_tensor("x");
  auto done = off.store(ids_.get_id(x), x, nullptr);
  (void)done;
  node_.simulator().run();
  // Every aborted attempt programmed NAND up to the failure point: four
  // attempts' worth of stripes show up in the endurance model even though
  // no store ever landed.
  EXPECT_GE(node_.array(0).host_bytes_written() - before, 4 * x.bytes());
}

TEST_F(FaultOffloaderTest, LatencyWindowShiftsCompletionBySpecLatency) {
  f::FaultSpec spike;
  spike.kind = f::FaultKind::ssd_latency;
  spike.latency = u::us(200);
  core::SsdOffloaderConfig cfg;
  cfg.fault.injector = &make_injector({spike});
  core::SsdOffloader off(node_, factory_, cfg);
  settle();

  auto x = make_tensor("x");
  auto done = off.store(ids_.get_id(x), x, nullptr);
  ASSERT_TRUE(done.has_value());
  node_.simulator().run();
  const double faulty = (*done)->completion_time();
  EXPECT_DOUBLE_EQ(off.stats().fault_extra_latency, 200e-6);

  // Reference: the identical store on an identical clean machine.
  hw::TrainingNode clean(hw::catalog::single_gpu_node(2));
  t::TensorFactory clean_factory(*clean.gpu(0).allocator);
  core::SsdOffloader clean_off(clean, clean_factory, {});
  auto y = clean_factory.cuda("x", {u::mib(64) / 2}, t::DType::fp16,
                              hw::MemoryTag::activation);
  auto clean_done = clean_off.store(ids_.get_id(y), y, nullptr);
  ASSERT_TRUE(clean_done.has_value());
  clean.simulator().run();
  EXPECT_NEAR(faulty - (*clean_done)->completion_time(), 200e-6, 1e-9);
}

TEST_F(FaultOffloaderTest, AttemptTimeoutRetriesUnderInjectedLatency) {
  f::FaultSpec spike;
  spike.kind = f::FaultKind::ssd_latency;
  spike.latency = u::ms(2);
  spike.duration = 1e-3;  // the spike is over before the first retry
  core::SsdOffloaderConfig cfg;
  cfg.fault.injector = &make_injector({spike});
  cfg.fault.attempt_timeout = u::ms(1);
  cfg.fault.initial_backoff = u::ms(2);
  core::SsdOffloader off(node_, factory_, cfg);

  auto x = make_tensor("x");
  std::optional<sim::CompletionPtr> done;
  node_.simulator().schedule_at(
      0.0, [&] { done = off.store(ids_.get_id(x), x, nullptr); });
  node_.simulator().run();
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE((*done)->done());
  EXPECT_EQ(off.stats().io_failures, 1u);  // the timed-out attempt
  EXPECT_EQ(off.stats().io_retries, 1u);
  EXPECT_EQ(off.stats().store_faults, 0u);
}

TEST_F(FaultOffloaderTest, CpuOffloaderRetriesAndFallsBackToo) {
  core::CpuOffloaderConfig cfg;
  cfg.fault.injector = &make_injector({always_fail()});
  cfg.fault.max_attempts = 2;
  core::CpuOffloader off(node_, factory_, cfg);
  settle();

  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  auto done = off.store(id, x, nullptr);
  ASSERT_TRUE(done.has_value());
  node_.simulator().run();
  EXPECT_TRUE((*done)->done());
  EXPECT_EQ(off.stats().io_failures, 2u);
  EXPECT_EQ(off.stats().io_retries, 1u);
  EXPECT_EQ(off.stats().store_faults, 1u);
  EXPECT_EQ(off.store_status(id).code, IoErrorCode::data_lost);

  auto ticket = off.load(id, "x'", {u::mib(64) / 2}, t::DType::fp16);
  node_.simulator().run();
  EXPECT_TRUE(ticket.done->done());
  EXPECT_EQ(off.stats().recompute_fallbacks, 1u);
  off.release(id);
}

// ---------------------------------------------------------------------------
// Session-level determinism and program invalidation

rt::SessionConfig small_config(m::ModelConfig model, rt::Strategy strategy) {
  rt::SessionConfig config;
  config.model = std::move(model);
  config.parallel.tensor_parallel = 2;
  config.strategy = strategy;
  return config;
}

/// Timing-only fault mix for the determinism grid: an open-ended transient
/// error window plus an SSD latency spike inside the first step.
f::FaultConfig timing_faults(std::uint64_t seed) {
  f::FaultSpec errors;
  errors.kind = f::FaultKind::io_error;
  errors.rate = 0.3;
  f::FaultSpec spike;
  spike.kind = f::FaultKind::ssd_latency;
  spike.latency = u::us(100);
  spike.at = 0.001;
  spike.duration = 0.01;
  f::FaultConfig config;
  config.specs = {errors, spike};
  config.seed = seed;
  return config;
}

/// A spec list that enables the injector without ever perturbing a step:
/// the window closes at t=1ns, before any offload I/O can begin.
f::FaultConfig armed_but_quiet() {
  f::FaultSpec armed;
  armed.kind = f::FaultKind::ssd_latency;
  armed.latency = 1e-9;
  armed.duration = 1e-9;
  f::FaultConfig config;
  config.specs = {armed};
  config.seed = 11;
  return config;
}

void expect_steps_equal(const rt::StepStats& a, const rt::StepStats& b,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.step_time, b.step_time);
  EXPECT_EQ(a.drain_time, b.drain_time);
  EXPECT_EQ(a.activation_peak, b.activation_peak);
  EXPECT_EQ(a.total_peak, b.total_peak);
  EXPECT_EQ(a.executed_flops, b.executed_flops);
  EXPECT_EQ(a.compute_busy, b.compute_busy);
  EXPECT_EQ(a.offloaded_bytes, b.offloaded_bytes);
  EXPECT_EQ(a.loaded_bytes, b.loaded_bytes);
  EXPECT_EQ(a.ssd_host_written, b.ssd_host_written);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.io_failures, b.io_failures);
  EXPECT_EQ(a.recompute_fallbacks, b.recompute_fallbacks);
  EXPECT_EQ(a.fault_stall_time, b.fault_stall_time);
  EXPECT_EQ(a.program_invalidations, b.program_invalidations);
  EXPECT_EQ(a.cache.kept_store_failed, b.cache.kept_store_failed);
  EXPECT_EQ(a.offloader_totals.io_retries, b.offloader_totals.io_retries);
  EXPECT_EQ(a.offloader_totals.store_faults,
            b.offloader_totals.store_faults);
  EXPECT_EQ(a.offloader_totals.retry_backoff_time,
            b.offloader_totals.retry_backoff_time);
  EXPECT_EQ(a.offloader_totals.fault_extra_latency,
            b.offloader_totals.fault_extra_latency);
}

void expect_fault_logs_equal(const std::vector<f::FaultEvent>& a,
                             const std::vector<f::FaultEvent>& b,
                             const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].gpu, b[i].gpu);
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].detail, b[i].detail);
  }
}

std::vector<m::ModelConfig> model_grid() {
  return {
      m::bert_config(2048, 2, 2),
      m::gpt_config(2048, 2, 2),
      m::t5_config(2048, 2, 2),
      m::gpt_moe_config(2048, 2, 2, /*num_experts=*/4, /*top_k=*/2),
      m::gpt_gqa_config(2048, 2, 2),
  };
}

std::vector<rt::Strategy> all_strategies() {
  return {rt::Strategy::keep_in_gpu, rt::Strategy::ssdtrain,
          rt::Strategy::ssdtrain_cpu, rt::Strategy::recompute_full,
          rt::Strategy::ssdtrain_recompute};
}

constexpr int kSteps = 3;

TEST(FaultDeterminism, IdenticalSeedIsBitIdenticalAcrossSessions) {
  for (const auto& model : model_grid()) {
    for (rt::Strategy strategy : all_strategies()) {
      const std::string what =
          model.name + " / " + std::string(to_string(strategy));
      auto config = small_config(model, strategy);
      config.faults = timing_faults(42);
      rt::SessionConfig config2 = config;
      rt::TrainingSession a(std::move(config));
      rt::TrainingSession b(std::move(config2));
      for (int step = 0; step < kSteps; ++step) {
        expect_steps_equal(a.run_step(), b.run_step(),
                           what + " step " + std::to_string(step));
      }
      ASSERT_NE(a.injector(), nullptr);
      ASSERT_NE(b.injector(), nullptr);
      expect_fault_logs_equal(a.injector()->events(),
                              b.injector()->events(), what);
      EXPECT_EQ(a.node().simulator().events_executed(),
                b.node().simulator().events_executed())
          << what;
    }
  }
}

TEST(FaultDeterminism, TracePathMatchesReplayPathUnderFaults) {
  // The injector's RNG draws track the I/O attempt sequence, which the
  // trace and replay paths issue identically — so the same seed must give
  // bit-identical steps whether the program is replayed or re-traced.
  for (const auto& model : model_grid()) {
    for (rt::Strategy strategy :
         {rt::Strategy::ssdtrain, rt::Strategy::ssdtrain_cpu,
          rt::Strategy::ssdtrain_recompute}) {
      const std::string what =
          model.name + " / " + std::string(to_string(strategy));
      auto traced_cfg = small_config(model, strategy);
      traced_cfg.faults = timing_faults(42);
      traced_cfg.use_replay = false;
      rt::SessionConfig replayed_cfg = traced_cfg;
      replayed_cfg.use_replay = true;
      rt::TrainingSession traced(std::move(traced_cfg));
      rt::TrainingSession replayed(std::move(replayed_cfg));
      for (int step = 0; step < kSteps; ++step) {
        expect_steps_equal(traced.run_step(), replayed.run_step(),
                           what + " step " + std::to_string(step));
      }
      ASSERT_NE(replayed.program(), nullptr) << what;
      expect_fault_logs_equal(traced.injector()->events(),
                              replayed.injector()->events(), what);
    }
  }
}

TEST(FaultProgram, TimingFaultsNeverInvalidateTheProgram) {
  auto config = small_config(m::bert_config(2048, 2, 2),
                             rt::Strategy::ssdtrain);
  config.faults = timing_faults(7);
  rt::TrainingSession session(std::move(config));
  std::uint64_t invalidations = 0;
  for (int step = 0; step < 4; ++step) {
    invalidations += session.run_step().program_invalidations;
  }
  EXPECT_EQ(invalidations, 0u);
  ASSERT_NE(session.program(), nullptr);
  EXPECT_TRUE(session.program()->replayable);
}

TEST(FaultProgram, StructuralFaultForcesRetrace) {
  auto config = small_config(m::bert_config(2048, 2, 2),
                             rt::Strategy::ssdtrain);
  config.faults = armed_but_quiet();
  const int gpu = config.gpu_index;
  rt::TrainingSession session(std::move(config));
  session.run_steps(2);
  ASSERT_NE(session.program(), nullptr);

  f::FaultSpec dropout;
  dropout.kind = f::FaultKind::ssd_dropout;
  dropout.gpu = gpu;
  dropout.member = 0;
  session.injector()->trigger(dropout);

  const auto recovery = session.run_step();
  EXPECT_EQ(recovery.program_invalidations, 1u);
  // The re-trace re-recorded a fresh program against the degraded array...
  ASSERT_NE(session.program(), nullptr);
  EXPECT_TRUE(session.program()->replayable);
  // ...and replay resumes: no further invalidations.
  EXPECT_EQ(session.run_step().program_invalidations, 0u);
}

TEST(FaultRecovery, PostDropoutStateMatchesFreshDegradedSession) {
  // Session A: healthy for two steps, then a RAID member drops and it
  // recovers (re-trace, re-record, rebalanced offload budget). Session B:
  // the member is already dead before step one. After recovery, A's
  // steady-state replay steps must be bit-identical to B's — degraded
  // mode is a state, not an accumulating error.
  auto make = [] {
    auto config = small_config(m::bert_config(2048, 2, 2),
                               rt::Strategy::ssdtrain);
    config.faults = armed_but_quiet();
    return config;
  };
  const int gpu = make().gpu_index;
  f::FaultSpec dropout;
  dropout.kind = f::FaultKind::ssd_dropout;
  dropout.gpu = gpu;
  dropout.member = 0;

  rt::TrainingSession a(make());
  a.run_steps(2);
  a.injector()->trigger(dropout);
  a.run_step();  // re-trace + re-record against the degraded array
  const auto a_steady = a.run_step();

  rt::TrainingSession b(make());
  b.injector()->trigger(dropout);
  b.run_step();  // records against the degraded array right away
  const auto b_steady = b.run_step();

  // Times agree to rounding noise only: the two sessions reach the steady
  // state at different absolute simulated instants, so the subtraction
  // end - start rounds differently in the last bits.
  EXPECT_NEAR(a_steady.step_time, b_steady.step_time,
              1e-12 * b_steady.step_time);
  EXPECT_NEAR(a_steady.compute_busy, b_steady.compute_busy,
              1e-12 * b_steady.compute_busy);
  EXPECT_EQ(a_steady.offloaded_bytes, b_steady.offloaded_bytes);
}

// ---------------------------------------------------------------------------
// Cluster sessions

TEST(ClusterFaults, SeededDeterminismAndStructuralInvalidation) {
  auto make = [] {
    rt::ClusterConfig config;
    config.model = m::bert_config(2048, 4, 4);
    config.parallel.pipeline_parallel = 2;
    config.strategy = rt::Strategy::ssdtrain;
    config.micro_batches = 4;
    config.schedule = ssdtrain::sched::PipelineKind::one_f_one_b;
    config.faults = timing_faults(13);
    return config;
  };
  rt::ClusterSession a(make());
  rt::ClusterSession b(make());
  for (int step = 0; step < kSteps; ++step) {
    const auto sa = a.run_step();
    const auto sb = b.run_step();
    expect_steps_equal(sa.combined, sb.combined,
                       "cluster step " + std::to_string(step));
    EXPECT_EQ(sa.pipeline_time, sb.pipeline_time);
    EXPECT_EQ(sa.p2p_bytes, sb.p2p_bytes);
    EXPECT_EQ(sa.dp_bytes, sb.dp_bytes);
  }
  ASSERT_NE(a.injector(), nullptr);
  expect_fault_logs_equal(a.injector()->events(), b.injector()->events(),
                          "cluster fault logs");

  // A structural fault discards every stage's recorded program at the next
  // step boundary; both stages re-record (chunk-staggered) and recover.
  f::FaultSpec dropout;
  dropout.kind = f::FaultKind::ssd_dropout;
  dropout.gpu = 0;
  dropout.member = 0;
  a.injector()->trigger(dropout);
  EXPECT_EQ(a.run_step().combined.program_invalidations, 2u);
  EXPECT_EQ(a.run_step().combined.program_invalidations, 0u);
}

}  // namespace
