// Table I of the paper, as executable properties. The paper contrasts
// SSDTrain with FlexGen, LLM-in-a-Flash, and ZeRO-Infinity on five axes:
// training support, activation offloading to main memory / to SSD, a
// direct GPU-SSD data path, asynchronous transfers, and interoperability.
// Each feature is asserted against the running system rather than claimed.

#include <gtest/gtest.h>

#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/sched/schedule.hpp"
#include "ssdtrain/util/units.hpp"

namespace rt = ssdtrain::runtime;
namespace m = ssdtrain::modules;
namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

namespace {

rt::SessionConfig config_for(rt::Strategy strategy) {
  rt::SessionConfig config;
  config.model = m::bert_config(8192, 3, 8);
  config.parallel.tensor_parallel = 2;
  config.strategy = strategy;
  return config;
}

}  // namespace

TEST(FeatureMatrix, TrainingSupported) {
  // Unlike the inference-only systems in Table I, backward propagation
  // consumes the offloaded tensors: loads happen and gradients flow.
  rt::TrainingSession session(config_for(rt::Strategy::ssdtrain));
  session.run_step();
  const auto stats = session.run_step();
  EXPECT_GT(stats.cache.prefetch_loads + stats.cache.miss_loads, 0u);
  EXPECT_GT(stats.offloader_totals.bytes_loaded, 0);
  EXPECT_GT(stats.algorithmic_flops, 0.0);
}

TEST(FeatureMatrix, ActivationOffloadingToSsd) {
  rt::TrainingSession session(config_for(rt::Strategy::ssdtrain));
  session.run_step();
  const auto stats = session.run_step();
  EXPECT_GT(stats.ssd_host_written, u::gb(1));
}

TEST(FeatureMatrix, ActivationOffloadingToMainMemory) {
  // ZeRO-Infinity offloads *checkpoints* only; SSDTrain's CPU offloader
  // targets activations proper.
  rt::TrainingSession session(config_for(rt::Strategy::ssdtrain_cpu));
  session.run_step();
  const auto stats = session.run_step();
  EXPECT_GT(stats.offloaded_bytes, u::gb(1));
  EXPECT_GT(session.node().pinned_pool().peak_used(), 0);
}

TEST(FeatureMatrix, DirectGpuSsdPathSkipsHostMemory) {
  auto config = config_for(rt::Strategy::ssdtrain);
  rt::TrainingSession session(std::move(config));
  session.run_steps(2);
  auto& node = session.node();
  // With GDS, not one byte of activation traffic crossed host DRAM.
  EXPECT_DOUBLE_EQ(node.network().resource_delivered(node.dram_resource()),
                   0.0);
  EXPECT_DOUBLE_EQ(
      node.network().resource_delivered(node.dram_bounce_resource()), 0.0);
}

TEST(FeatureMatrix, BouncePathDoesCrossHostMemory) {
  auto config = config_for(rt::Strategy::ssdtrain);
  config.use_gds = false;
  rt::TrainingSession session(std::move(config));
  session.run_steps(2);
  auto& node = session.node();
  EXPECT_GT(node.network().resource_delivered(node.dram_bounce_resource()),
            0.0);
}

TEST(FeatureMatrix, TransfersAreAsynchronous) {
  // Existing systems block training on loads or synchronise per layer;
  // SSDTrain hides the I/O. Evidence: the compute stream is busy
  // essentially the whole step even though gigabytes moved.
  rt::TrainingSession session(config_for(rt::Strategy::ssdtrain));
  session.run_step();
  const auto stats = session.run_step();
  EXPECT_GT(stats.offloaded_bytes, u::gb(1));
  EXPECT_GT(stats.compute_utilization, 0.95);
}

TEST(FeatureMatrix, InteroperabilityHooksAreRemovable) {
  // SSDTrain installs via hooks and monkey-patched scheduler hints — no
  // module internals are modified. The same model object trains with and
  // without the cache.
  auto model = m::build_model(m::bert_config(4096, 2, 4));
  std::size_t hooks_before = 0;
  model->visit_modules(
      [&](m::Module& mod) { hooks_before += mod.hook_count(); });
  EXPECT_EQ(hooks_before, 0u);

  hw::TrainingNode node(hw::catalog::single_gpu_node(2));
  ssdtrain::tensor::TensorFactory factory(*node.gpu(0).allocator);
  ssdtrain::core::SsdOffloader offloader(node, factory, {});
  ssdtrain::core::TensorCache cache(node.simulator(), offloader, {});
  cache.install_hooks(*model);

  std::size_t hooks_after = 0;
  model->visit_modules(
      [&](m::Module& mod) { hooks_after += mod.hook_count(); });
  // Four hooks per module (forward pre/post, backward pre/post).
  EXPECT_GT(hooks_after, hooks_before);
  std::size_t modules = 0;
  model->visit_modules([&](m::Module&) { ++modules; });
  EXPECT_EQ(hooks_after, modules * 4);
}

TEST(FeatureMatrix, InteroperabilityWithPipelineSchedules) {
  // The cache keeps per-micro-batch records, so 1F1B's interleaved
  // forward/backward pattern (several micro-batches in flight) works.
  auto config = config_for(rt::Strategy::ssdtrain);
  config.model = m::bert_config(4096, 2, 4);
  config.parallel.pipeline_parallel = 4;
  rt::TrainingSession session(std::move(config));
  const auto schedule = ssdtrain::sched::schedule_1f1b(8, 4, 1);
  EXPECT_EQ(ssdtrain::sched::peak_in_flight_micro_batches(schedule), 3);
  session.executor().run_step(session.model(), schedule);
  const auto stats = session.executor().run_step(session.model(), schedule);
  EXPECT_GT(stats.offloaded_bytes, 0);
  // All records drained: nothing leaked across the step boundary.
  EXPECT_EQ(session.cache()->tracked_entries(), 0u);
  EXPECT_EQ(session.node().array(1).live_bytes(), 0);
}
