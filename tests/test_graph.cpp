// Tests for the computational-graph skeleton and the saved-tensor hook
// plumbing (pack/unpack), including memory-lifetime behaviour: packing a
// tensor through id-returning hooks releases the graph's strong reference.

#include <gtest/gtest.h>

#include "ssdtrain/graph/graph.hpp"
#include "ssdtrain/hw/device_allocator.hpp"
#include "ssdtrain/tensor/tensor.hpp"
#include "ssdtrain/tensor/tensor_id.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace g = ssdtrain::graph;
namespace t = ssdtrain::tensor;
namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

namespace {

class GraphTest : public ::testing::Test {
 protected:
  hw::DeviceAllocator allocator_{u::gib(4)};
  t::TensorFactory factory_{allocator_};

  t::Tensor make(const char* name) {
    return factory_.cuda(name, {1 << 20}, t::DType::fp16,
                         hw::MemoryTag::activation);
  }
};

}  // namespace

TEST_F(GraphTest, SaveWithoutHooksKeepsStrongReference) {
  g::Graph graph;
  auto& node = graph.make_node("LinearBWD");
  {
    auto x = make("x");
    node.save(x, nullptr);
  }
  // The node holds the tensor: memory stays live.
  EXPECT_GT(allocator_.live(hw::MemoryTag::activation), 0);
  auto back = node.unpack(0, nullptr);
  EXPECT_TRUE(back.defined());
  node.clear();
  back.reset();
  EXPECT_EQ(allocator_.live(hw::MemoryTag::activation), 0);
}

TEST_F(GraphTest, PackHookReplacesTensorWithId) {
  g::Graph graph;
  t::IdAssigner ids;
  int packs = 0;
  g::SavedTensorHooks hooks;
  hooks.pack = [&](const t::Tensor& tensor) -> g::PackedValue {
    ++packs;
    return ids.get_id(tensor);
  };
  hooks.unpack = [&](const g::PackedValue&) -> t::Tensor {
    return make("reloaded");
  };

  auto& node = graph.make_node("MulBWD");
  {
    auto x = make("x");
    node.save(x, &hooks);
  }
  EXPECT_EQ(packs, 1);
  // Only the id is on the graph: the original memory was reclaimed.
  EXPECT_EQ(allocator_.live(hw::MemoryTag::activation), 0);
  EXPECT_TRUE(std::holds_alternative<t::TensorId>(node.slot(0)));

  auto back = node.unpack(0, &hooks);
  EXPECT_TRUE(back.defined());
  EXPECT_EQ(back.label(), "reloaded");
}

TEST_F(GraphTest, PackHookMayPassTensorsThrough) {
  g::Graph graph;
  g::SavedTensorHooks hooks;
  hooks.pack = [](const t::Tensor& tensor) -> g::PackedValue {
    return tensor;  // e.g. a weight
  };
  hooks.unpack = [](const g::PackedValue& v) -> t::Tensor {
    return std::get<t::Tensor>(v);
  };
  auto& node = graph.make_node("n");
  auto w = make("w");
  node.save(w, &hooks);
  EXPECT_TRUE(same_storage(node.unpack(0, &hooks), w));
}

TEST_F(GraphTest, UnpackingPackedIdWithoutHooksThrows) {
  g::Graph graph;
  t::IdAssigner ids;
  g::SavedTensorHooks hooks;
  hooks.pack = [&](const t::Tensor& tensor) -> g::PackedValue {
    return ids.get_id(tensor);
  };
  hooks.unpack = [](const g::PackedValue&) -> t::Tensor { return {}; };
  auto& node = graph.make_node("n");
  auto x = make("x");
  node.save(x, &hooks);
  EXPECT_THROW(node.unpack(0, nullptr), u::ContractViolation);
}

TEST_F(GraphTest, SlotsPreserveOrder) {
  g::Graph graph;
  auto& node = graph.make_node("n");
  auto a = make("a");
  auto b = make("b");
  EXPECT_EQ(node.save(a, nullptr), 0u);
  EXPECT_EQ(node.save(b, nullptr), 1u);
  EXPECT_EQ(node.unpack(0, nullptr).label(), "a");
  EXPECT_EQ(node.unpack(1, nullptr).label(), "b");
  EXPECT_EQ(node.slot_count(), 2u);
}

TEST_F(GraphTest, DiscardHooksDropSavedTensors) {
  g::Graph graph;
  auto& node = graph.make_node("checkpointed");
  {
    auto x = make("x");
    node.save(x, &g::discard_hooks());
  }
  // Discarded: nothing held, memory reclaimed at scope exit.
  EXPECT_EQ(allocator_.live(hw::MemoryTag::activation), 0);
  EXPECT_THROW(node.unpack(0, &g::discard_hooks()), u::ContractViolation);
}

TEST_F(GraphTest, GraphOwnsNodesUntilCleared) {
  g::Graph graph;
  graph.make_node("a");
  graph.make_node("b");
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.node(0).name(), "a");
  graph.clear();
  EXPECT_EQ(graph.node_count(), 0u);
}

TEST_F(GraphTest, ClearReleasesSavedMemory) {
  g::Graph graph;
  auto& node = graph.make_node("n");
  {
    auto x = make("x");
    node.save(x, nullptr);
  }
  EXPECT_GT(allocator_.live(hw::MemoryTag::activation), 0);
  graph.clear();
  EXPECT_EQ(allocator_.live(hw::MemoryTag::activation), 0);
}
