// Tests for the block allocator and the tagged device allocator: overlap
// freedom, coalescing, peak tracking, fragmentation, and OOM behaviour.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ssdtrain/hw/block_allocator.hpp"
#include "ssdtrain/hw/device_allocator.hpp"
#include "ssdtrain/hw/host_memory.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/rng.hpp"
#include "ssdtrain/util/units.hpp"

namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

TEST(BlockAllocator, AllocatesAlignedNonOverlapping) {
  hw::BlockAllocator a(u::kib(64), 512);
  auto b1 = a.allocate(100);
  auto b2 = a.allocate(1000);
  ASSERT_TRUE(b1 && b2);
  EXPECT_EQ(b1->size % 512, 0);
  EXPECT_EQ(b2->size % 512, 0);
  EXPECT_TRUE(b1->offset + b1->size <= b2->offset ||
              b2->offset + b2->size <= b1->offset);
}

TEST(BlockAllocator, ExhaustionReturnsNullopt) {
  hw::BlockAllocator a(u::kib(1), 512);
  EXPECT_TRUE(a.allocate(512));
  EXPECT_TRUE(a.allocate(512));
  EXPECT_FALSE(a.allocate(1));
}

TEST(BlockAllocator, FreeCoalescesNeighbors) {
  hw::BlockAllocator a(u::kib(4), 512);
  auto b1 = a.allocate(1024);
  auto b2 = a.allocate(1024);
  auto b3 = a.allocate(1024);
  ASSERT_TRUE(b1 && b2 && b3);
  a.free(*b1);
  a.free(*b3);
  // b1 leaves a hole at the front; b3 coalesces with the free tail.
  EXPECT_EQ(a.free_ranges(), 2u);
  a.free(*b2);  // bridges everything
  EXPECT_EQ(a.free_ranges(), 1u);
  EXPECT_EQ(a.largest_free_range(), u::kib(4));
  EXPECT_EQ(a.used(), 0);
}

TEST(BlockAllocator, DoubleFreeThrows) {
  hw::BlockAllocator a(u::kib(4), 512);
  auto b = a.allocate(512);
  ASSERT_TRUE(b);
  a.free(*b);
  EXPECT_THROW(a.free(*b), u::ContractViolation);
}

TEST(BlockAllocator, StaleFreeAfterSameRangeReallocationThrows) {
  // The cookie-slot fast path must not be fooled by ABA: freeing a block,
  // re-carving the identical range into the recycled slot, then freeing
  // the *stale* handle again has to trip the generation check instead of
  // silently releasing the live allocation.
  hw::BlockAllocator a(u::kib(4), 512);
  auto stale = a.allocate(512);
  ASSERT_TRUE(stale);
  a.free(*stale);
  auto fresh = a.allocate(512);
  ASSERT_TRUE(fresh);
  EXPECT_EQ(fresh->offset, stale->offset);
  EXPECT_EQ(fresh->cookie, stale->cookie);
  EXPECT_THROW(a.free(*stale), u::ContractViolation);
  a.free(*fresh);
  EXPECT_EQ(a.live_blocks(), 0u);
}

TEST(BlockAllocator, FragmentationBlocksLargeAllocation) {
  hw::BlockAllocator a(u::kib(4), 512);
  std::vector<hw::Block> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(*a.allocate(512));
  // Free every other block: 1 KiB total free but max range 512.
  for (int i = 0; i < 8; i += 2) a.free(blocks[static_cast<std::size_t>(i)]);
  EXPECT_EQ(a.free_bytes(), u::kib(2));
  EXPECT_EQ(a.largest_free_range(), 512);
  EXPECT_FALSE(a.allocate(1024));
  EXPECT_GT(a.external_fragmentation(), 0.5);
}

TEST(BlockAllocator, RandomStressPreservesInvariants) {
  u::Xoshiro256 rng(2024);
  hw::BlockAllocator a(u::mib(64), 512);
  std::vector<hw::Block> live;
  for (int step = 0; step < 5000; ++step) {
    const bool do_alloc = live.empty() || rng.uniform() < 0.55;
    if (do_alloc) {
      const auto bytes = static_cast<u::Bytes>(rng.uniform_int(65536) + 1);
      auto b = a.allocate(bytes);
      if (b) live.push_back(*b);
    } else {
      const auto idx = rng.uniform_int(live.size());
      a.free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  // No two live blocks overlap and used() is the sum of live sizes.
  std::set<std::pair<std::int64_t, std::int64_t>> ranges;
  u::Bytes total = 0;
  for (const auto& b : live) {
    ranges.insert({b.offset, b.offset + b.size});
    total += b.size;
  }
  std::int64_t prev_end = -1;
  for (const auto& [begin, end] : ranges) {
    EXPECT_GE(begin, prev_end);
    prev_end = end;
  }
  EXPECT_EQ(a.used(), total);
  EXPECT_EQ(a.live_blocks(), live.size());
}

TEST(DeviceAllocator, TracksPerTagPeaks) {
  hw::DeviceAllocator d(u::gib(1));
  auto w = d.allocate(u::mib(100), hw::MemoryTag::weights);
  auto a1 = d.allocate(u::mib(200), hw::MemoryTag::activation);
  auto a2 = d.allocate(u::mib(300), hw::MemoryTag::activation);
  EXPECT_EQ(d.live(hw::MemoryTag::activation), a1.bytes + a2.bytes);
  d.free(a1);
  d.free(a2);
  EXPECT_EQ(d.live(hw::MemoryTag::activation), 0);
  // Peak remembers the high-water mark, not the current value.
  EXPECT_EQ(d.peak(hw::MemoryTag::activation), a1.bytes + a2.bytes);
  EXPECT_EQ(d.peak(hw::MemoryTag::weights), w.bytes);
  EXPECT_EQ(d.peak_total(), w.bytes + a1.bytes + a2.bytes);
  d.free(w);
}

TEST(DeviceAllocator, ResetPeaksDropsToLive) {
  hw::DeviceAllocator d(u::gib(1));
  auto a = d.allocate(u::mib(500), hw::MemoryTag::activation);
  d.free(a);
  auto b = d.allocate(u::mib(10), hw::MemoryTag::activation);
  d.reset_peaks();
  EXPECT_EQ(d.peak(hw::MemoryTag::activation), b.bytes);
  d.free(b);
}

TEST(DeviceAllocator, ThrowsOnOom) {
  hw::DeviceAllocator d(u::mib(64));
  auto a = d.allocate(u::mib(60), hw::MemoryTag::activation);
  EXPECT_THROW(d.allocate(u::mib(10), hw::MemoryTag::activation),
               hw::OutOfDeviceMemory);
  d.free(a);
  EXPECT_NO_THROW(d.allocate(u::mib(10), hw::MemoryTag::activation));
}

TEST(DeviceAllocator, AllocationHookSeesDeltas) {
  hw::DeviceAllocator d(u::gib(1));
  u::Bytes registered = 0;
  d.set_allocation_hook([&](u::Bytes delta, hw::MemoryTag tag) {
    if (tag == hw::MemoryTag::activation) registered += delta;
  });
  auto a = d.allocate(u::mib(64), hw::MemoryTag::activation);
  EXPECT_EQ(registered, a.bytes);
  d.free(a);
  EXPECT_EQ(registered, 0);
}

TEST(PinnedPool, AllocateFreeAndFailureCount) {
  hw::PinnedMemoryPool pool(u::mib(10));
  auto a = pool.allocate(u::mib(8));
  ASSERT_TRUE(a);
  EXPECT_FALSE(pool.allocate(u::mib(4)));
  EXPECT_EQ(pool.failed_allocations(), 1u);
  pool.free(*a);
  EXPECT_EQ(pool.used(), 0);
  EXPECT_GE(pool.peak_used(), u::mib(8));
}

TEST(PinnedPool, ResizeRequiresEmptyPool) {
  hw::PinnedMemoryPool pool(u::mib(10));
  auto a = pool.allocate(u::mib(1));
  ASSERT_TRUE(a);
  EXPECT_THROW(pool.resize(u::mib(20)), u::ContractViolation);
  pool.free(*a);
  pool.resize(u::mib(20));
  EXPECT_EQ(pool.pool_size(), u::mib(20));
}
