// Tests for GPU timing model, PCIe parameters, and the TrainingNode wiring
// (Table II evaluation machine).

#include <gtest/gtest.h>

#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/hw/gpu.hpp"
#include "ssdtrain/hw/node.hpp"
#include "ssdtrain/hw/pcie.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

TEST(Gpu, EfficiencySaturatesWithKernelSize) {
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  const double small = gpu.effective_rate(1e9);
  const double large = gpu.effective_rate(1e13);
  EXPECT_LT(small, large);
  EXPECT_LE(large, gpu.spec().fp16_peak * gpu.spec().max_efficiency);
  // Large kernels approach the asymptote.
  EXPECT_GT(large / (gpu.spec().fp16_peak * gpu.spec().max_efficiency), 0.98);
}

TEST(Gpu, RooflinePicksComputeOrMemoryBound) {
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  // Compute-bound GEMM: many FLOPs, few bytes.
  hw::KernelDesc gemm{"gemm", 1e13, u::mib(512), u::mib(512)};
  // Memory-bound elementwise: few FLOPs, many bytes.
  hw::KernelDesc eltwise{"add", 1e8, u::gib(2), u::gib(2)};
  const double gemm_time = gpu.kernel_time(gemm);
  const double elt_time = gpu.kernel_time(eltwise);
  EXPECT_GT(gemm_time, 1e13 / gpu.spec().fp16_peak);
  // Elementwise time is close to pure memory time.
  EXPECT_NEAR(elt_time,
              gpu.memory_time(u::gib(4)) + gpu.spec().kernel_launch_latency,
              1e-6);
}

TEST(Gpu, LaunchLatencyFloorsTinyKernels) {
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  hw::KernelDesc tiny{"tiny", 1e3, 512, 512};
  EXPECT_GE(gpu.kernel_time(tiny), gpu.spec().kernel_launch_latency);
}

TEST(Gpu, A100SustainedThroughputInMeasuredBand) {
  // A Megatron-layer-sized GEMM (batch 16, seq 1024, hidden 12288, TP2)
  // should sustain roughly 45-55% of peak — the MFU band behind the
  // paper's ~140-150 TFLOP/s per-GPU model throughput.
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  const double gemm_flops = 3.7e12;  // QKV projection slice
  const double rate = gpu.effective_rate(gemm_flops);
  EXPECT_GT(rate, 0.40 * gpu.spec().fp16_peak);
  EXPECT_LT(rate, 0.60 * gpu.spec().fp16_peak);
}

TEST(Pcie, Gen4x16EffectiveBandwidth) {
  const auto link = hw::catalog::pcie_gen4_x16();
  const double bw = hw::effective_bandwidth(link);
  // ~31.5 GB/s raw, ~26-27 GB/s effective.
  EXPECT_GT(bw, u::gbps(24));
  EXPECT_LT(bw, u::gbps(29));
}

TEST(Pcie, GenerationsScale) {
  EXPECT_NEAR(hw::per_lane_rate(hw::PcieGeneration::gen4) /
                  hw::per_lane_rate(hw::PcieGeneration::gen3),
              2.0, 0.01);
  EXPECT_NEAR(hw::per_lane_rate(hw::PcieGeneration::gen5) /
                  hw::per_lane_rate(hw::PcieGeneration::gen4),
              2.0, 0.01);
}

TEST(Node, Table2MachineMatchesPaperSpec) {
  auto node = hw::TrainingNode(hw::catalog::table2_evaluation_node());
  EXPECT_EQ(node.gpu_count(), 2);
  ASSERT_TRUE(node.has_array(0));
  ASSERT_TRUE(node.has_array(1));
  EXPECT_EQ(node.array(0).member_count(), 3u);  // 3-SSD RAID0
  EXPECT_EQ(node.array(1).member_count(), 4u);  // 4-SSD RAID0
  // 7 Optanes total; each GPU gets 40 GB.
  EXPECT_EQ(node.gpu(0).allocator->capacity(), u::gib(40));
  // The measured GPU (per the paper, the one with 4 SSDs).
  EXPECT_EQ(hw::catalog::table2_measured_gpu, 1);
}

TEST(Node, GdsPathAvoidsHostMemory) {
  auto node = hw::TrainingNode(hw::catalog::table2_evaluation_node());
  const auto path = node.gds_write_path(1);
  for (auto r : path) {
    EXPECT_NE(r, node.dram_resource());
    EXPECT_NE(r, node.dram_bounce_resource());
  }
  const auto bounce = node.bounce_write_path(1);
  bool crosses_dram = false;
  for (auto r : bounce) {
    if (r == node.dram_bounce_resource()) crosses_dram = true;
  }
  EXPECT_TRUE(crosses_dram);
}

TEST(Node, GdsWriteFlowBottleneckedBySsdArray) {
  auto node = hw::TrainingNode(hw::catalog::table2_evaluation_node());
  auto& net = node.network();
  auto& sim = node.simulator();
  // 4-SSD array: 24.4 GB/s write; PCIe gen4 x16: ~26.8 GB/s. The array is
  // the bottleneck for GDS writes.
  double t_done = -1;
  net.start_flow("store", u::gb(24.4), node.gds_write_path(1),
                 [&] { t_done = sim.now(); });
  sim.run();
  EXPECT_NEAR(t_done, 1.0, 0.05);
}

TEST(Node, BouncePathSlowerThanGds) {
  auto node = hw::TrainingNode(hw::catalog::table2_evaluation_node());
  auto& net = node.network();
  auto& sim = node.simulator();
  double t_gds = -1, t_bounce = -1;
  net.start_flow("gds", u::gb(10), node.gds_write_path(1),
                 [&] { t_gds = sim.now(); });
  sim.run();
  const double start = sim.now();
  net.start_flow("bounce", u::gb(10), node.bounce_write_path(1),
                 [&] { t_bounce = sim.now() - start; });
  sim.run();
  EXPECT_GT(t_bounce, 0.0);
  EXPECT_GE(t_bounce, t_gds * 0.99);  // never faster than the direct path
}

TEST(Node, NodeWithoutArraysStillConstructs) {
  hw::NodeConfig cfg = hw::catalog::single_gpu_node(0);
  cfg.arrays.clear();
  auto node = hw::TrainingNode(std::move(cfg));
  EXPECT_FALSE(node.has_array(0));
  EXPECT_THROW((void)node.array(0), u::ContractViolation);
}
