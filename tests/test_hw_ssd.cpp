// Tests for the SSD stack: FTL write amplification and wear levelling,
// device extent management, RAID0 striping, and the endurance model.
// The key property (paper §II-C): large sequential writes that are trimmed
// wholesale keep WAF ~= 1, while random overwrites drive WAF well above 1.

#include <gtest/gtest.h>

#include <stdexcept>

#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/hw/ssd/endurance.hpp"
#include "ssdtrain/hw/ssd/ftl.hpp"
#include "ssdtrain/hw/ssd/nand.hpp"
#include "ssdtrain/hw/ssd/raid0.hpp"
#include "ssdtrain/hw/ssd/ssd_device.hpp"
#include "ssdtrain/sim/bandwidth_network.hpp"
#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/rng.hpp"
#include "ssdtrain/util/units.hpp"

namespace hw = ssdtrain::hw;
namespace sim = ssdtrain::sim;
namespace u = ssdtrain::util;

namespace {

hw::NandGeometry small_geometry() {
  // 64 blocks x 64 pages x 16 KiB = 64 MiB physical, ~12% OP.
  hw::NandGeometry geo;
  geo.page_size = u::kib(16);
  geo.pages_per_block = 64;
  geo.physical_blocks = 64;
  geo.over_provisioning = 0.125;
  geo.pe_cycle_limit = 1000;
  return geo;
}

}  // namespace

TEST(Nand, GeometryDerivesLogicalCapacity) {
  const auto geo = small_geometry();
  EXPECT_EQ(geo.block_size(), u::kib(16) * 64);
  EXPECT_EQ(geo.physical_capacity(), u::mib(64));
  EXPECT_EQ(geo.logical_pages(), static_cast<std::int64_t>(64 * 64 * 0.875));
}

TEST(Nand, MakeGeometryCoversRequestedCapacity) {
  const auto geo = hw::make_geometry(u::gb(1), hw::CellType::tlc, 0.07);
  EXPECT_GE(geo.logical_capacity(), u::gb(1));
  EXPECT_EQ(geo.pe_cycle_limit, 3000);
}

TEST(Nand, CellTypeEnduranceOrdering) {
  EXPECT_GT(hw::default_pe_cycle_limit(hw::CellType::slc),
            hw::default_pe_cycle_limit(hw::CellType::mlc));
  EXPECT_GT(hw::default_pe_cycle_limit(hw::CellType::mlc),
            hw::default_pe_cycle_limit(hw::CellType::tlc));
  EXPECT_GT(hw::default_pe_cycle_limit(hw::CellType::tlc),
            hw::default_pe_cycle_limit(hw::CellType::qlc));
}

TEST(Ftl, FreshSequentialWritesHaveUnitWaf) {
  hw::Ftl ftl(small_geometry());
  ftl.write_extent(0, ftl.logical_pages() / 2);
  EXPECT_DOUBLE_EQ(ftl.write_amplification(), 1.0);
  EXPECT_EQ(ftl.gc_runs(), 0);
}

TEST(Ftl, OffloadPatternKeepsWafNearOne) {
  // The tensor-cache pattern: write a large extent, read it in backward,
  // trim it, repeat. Even after many "steps" covering the whole device
  // several times over, GC finds fully-invalid blocks, so WAF stays ~1.
  hw::Ftl ftl(small_geometry());
  const std::int64_t extent_pages = 256;  // 4 MiB tensors
  const std::int64_t slots = ftl.logical_pages() / extent_pages;
  for (int step = 0; step < 200; ++step) {
    const std::int64_t slot = step % slots;
    ftl.write_extent(slot * extent_pages, extent_pages);
    ftl.trim_extent(slot * extent_pages, extent_pages);
  }
  EXPECT_LT(ftl.write_amplification(), 1.05);
}

TEST(Ftl, RandomOverwritesAmplifyWrites) {
  hw::Ftl ftl(small_geometry());
  u::Xoshiro256 rng(7);
  // Precondition: fill the whole logical space.
  ftl.write_extent(0, ftl.logical_pages());
  // JESD-style random overwrites (no trim).
  for (int i = 0; i < 200000; ++i) {
    ftl.write_page(static_cast<hw::Lpa>(rng.uniform_int(
        static_cast<std::uint64_t>(ftl.logical_pages()))));
  }
  EXPECT_GT(ftl.write_amplification(), 1.5);
  EXPECT_GT(ftl.gc_runs(), 0);
}

TEST(Ftl, TrimFreesPagesWithoutWriting) {
  hw::Ftl ftl(small_geometry());
  ftl.write_extent(0, 100);
  const auto media_before = ftl.media_pages_written();
  ftl.trim_extent(0, 100);
  EXPECT_EQ(ftl.media_pages_written(), media_before);
  EXPECT_FALSE(ftl.is_mapped(0));
  EXPECT_TRUE(ftl.is_mapped(100) == false);
}

TEST(Ftl, OverwriteInvalidatesOldCopy) {
  hw::Ftl ftl(small_geometry());
  ftl.write_page(5);
  ftl.write_page(5);
  EXPECT_EQ(ftl.host_pages_written(), 2);
  EXPECT_TRUE(ftl.is_mapped(5));
}

TEST(Ftl, WearLevelingKeepsEraseCountsTight) {
  hw::Ftl ftl(small_geometry());
  const std::int64_t extent_pages = 128;
  const std::int64_t slots = ftl.logical_pages() / extent_pages;
  for (int step = 0; step < 2000; ++step) {
    const std::int64_t slot = step % slots;
    ftl.write_extent(slot * extent_pages, extent_pages);
    ftl.trim_extent(slot * extent_pages, extent_pages);
  }
  EXPECT_GT(ftl.blocks_erased(), 0);
  // Wear spread: max-min erase gap stays small relative to the mean.
  EXPECT_LE(ftl.max_erase_count() - ftl.min_erase_count(), 4);
}

TEST(Ftl, WearFractionGrowsMonotonically) {
  hw::Ftl ftl(small_geometry());
  double last = ftl.wear_fraction();
  for (int step = 0; step < 50; ++step) {
    ftl.write_extent(0, ftl.logical_pages() / 4);
    ftl.trim_extent(0, ftl.logical_pages() / 4);
    const double now = ftl.wear_fraction();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0.0);
  EXPECT_LT(last, 1.0);
}

TEST(Ftl, OutOfRangeLpaRejected) {
  hw::Ftl ftl(small_geometry());
  EXPECT_THROW(ftl.write_page(-1), u::ContractViolation);
  EXPECT_THROW(ftl.write_page(ftl.logical_pages()), u::ContractViolation);
}

TEST(SsdDevice, ExtentLifecycleAndAccounting) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto spec = hw::catalog::optane_p5800x_1600gb();
  spec.capacity = u::gb(16);  // small device for the test
  hw::SsdDevice ssd(net, spec);

  auto extent = ssd.allocate_extent(u::mib(256));
  EXPECT_GE(extent.page_count * spec.sim_page_size, u::mib(256));
  ssd.record_write(extent);
  EXPECT_EQ(ssd.host_bytes_written(), u::mib(256));
  EXPECT_DOUBLE_EQ(ssd.write_amplification(), 1.0);
  ssd.record_read(extent);
  EXPECT_EQ(ssd.host_bytes_read(), u::mib(256));
  ssd.release_extent(extent);
  EXPECT_EQ(ssd.live_bytes(), 0);
}

TEST(SsdDevice, FullDeviceThrows) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto spec = hw::catalog::optane_p5800x_1600gb();
  spec.capacity = u::gb(1);
  hw::SsdDevice ssd(net, spec);
  auto big = ssd.allocate_extent(static_cast<u::Bytes>(
      static_cast<double>(ssd.logical_capacity()) * 0.95));
  (void)big;
  EXPECT_THROW(ssd.allocate_extent(u::mib(200)), std::runtime_error);
}

TEST(SsdDevice, WriteChannelTracksSpecBandwidth) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto spec = hw::catalog::optane_p5800x_1600gb();
  spec.capacity = u::gb(16);
  hw::SsdDevice ssd(net, spec);
  EXPECT_DOUBLE_EQ(net.capacity(ssd.write_resource()),
                   spec.seq_write_bandwidth);
  // A sequential write keeps WAF at 1, so capacity is unchanged after
  // accounting.
  auto extent = ssd.allocate_extent(u::gb(1));
  ssd.record_write(extent);
  EXPECT_DOUBLE_EQ(net.capacity(ssd.write_resource()),
                   spec.seq_write_bandwidth);
}

TEST(Raid0, StripesBytesAcrossMembers) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto spec = hw::catalog::optane_p5800x_1600gb();
  spec.capacity = u::gb(16);
  hw::Raid0Array array(net, "arr", {spec, spec, spec, spec});
  EXPECT_EQ(array.member_count(), 4u);
  EXPECT_DOUBLE_EQ(array.nominal_write_bandwidth(),
                   4 * spec.seq_write_bandwidth);

  auto extent = array.allocate_extent(u::gib(1));
  array.record_write(extent);
  // Each member received ~1/4 of the payload (rounded up to the chunk).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(array.member(i).host_bytes_written()),
                static_cast<double>(u::gib(1)) / 4.0,
                static_cast<double>(u::kib(512)));
  }
  EXPECT_EQ(array.host_bytes_written(), u::gib(1) / 4 * 4);
  array.release_extent(extent);
  EXPECT_EQ(array.live_bytes(), 0);
}

TEST(Raid0, AggregateChannelIsMemberSum) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto spec = hw::catalog::optane_p5800x_1600gb();
  spec.capacity = u::gb(16);
  hw::Raid0Array array3(net, "a3", {spec, spec, spec});
  EXPECT_NEAR(net.capacity(array3.write_resource()), u::gbps(3 * 6.1), 1e6);
  EXPECT_NEAR(net.capacity(array3.read_resource()), u::gbps(3 * 7.2), 1e6);
}

TEST(Raid0, EnduranceConsumedTracksWorstMember) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto spec = hw::catalog::optane_p5800x_1600gb();
  spec.capacity = u::gb(4);
  hw::Raid0Array array(net, "arr", {spec, spec});
  auto extent = array.allocate_extent(u::gb(1));
  for (int i = 0; i < 10; ++i) array.record_write(extent);
  EXPECT_GT(array.endurance_consumed(), 0.0);
  EXPECT_LE(array.endurance_consumed(), 1.0);
}

TEST(Endurance, TbwConversionRoundTrips) {
  const auto rating = hw::EnduranceRating::from_tbw(u::tb(1), u::tb(600), 5.0);
  EXPECT_NEAR(rating.rated_host_writes(), 600e12, 1e9);
}

TEST(Endurance, SequentialWorkloadGetsJesdWafBonus) {
  const auto rating = hw::EnduranceRating::from_tbw(u::tb(1), u::tb(600), 5.0);
  hw::WorkloadAssumptions sequential;  // WAF 1, no retention relaxation
  const double budget = hw::lifetime_host_writes(rating, sequential);
  // 3-DWPD-class drives allow ~2.5x the rated sequential writes (paper
  // §II-C): exactly the jesd_waf/workload_waf ratio.
  EXPECT_NEAR(budget / rating.rated_host_writes(), 2.5, 1e-9);
}

TEST(Endurance, RetentionRelaxationMultipliesBudget) {
  const auto rating = hw::EnduranceRating::from_tbw(u::tb(1), u::tb(600), 5.0);
  const auto workload = hw::WorkloadAssumptions::ssdtrain_default();
  const double budget = hw::lifetime_host_writes(rating, workload);
  EXPECT_NEAR(budget / rating.rated_host_writes(), 2.5 * 86.0, 1e-6);
}

TEST(Endurance, LifespanFormulaMatchesPaper) {
  // t_life = S_endurance * t_step / S_activations.
  const double budget = 1e18;  // bytes
  const auto lifespan = hw::lifespan_seconds(budget, 10.0, u::tb(1));
  EXPECT_NEAR(lifespan, 1e18 / 1e12 * 10.0, 1.0);
}

TEST(Endurance, HigherWafShortensLife) {
  const auto rating = hw::EnduranceRating::from_tbw(u::tb(1), u::tb(600), 5.0);
  hw::WorkloadAssumptions seq;
  hw::WorkloadAssumptions random;
  random.workload_waf = 4.0;
  EXPECT_GT(hw::lifetime_host_writes(rating, seq),
            hw::lifetime_host_writes(rating, random));
}
