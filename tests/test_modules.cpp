// Tests for the module tree: hook protocol, per-layer saved-activation
// accounting (cross-validated against the closed-form model — the same
// check the paper's Table III performs), FLOP accounting, backward state
// management, and the three model architectures.

#include <gtest/gtest.h>

#include <cmath>

#include "ssdtrain/analysis/activation_model.hpp"
#include "ssdtrain/analysis/perf_model.hpp"
#include "ssdtrain/hw/device_allocator.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/modules/transformer.hpp"
#include "ssdtrain/util/units.hpp"
#include "test_support.hpp"

namespace m = ssdtrain::modules;
namespace a = ssdtrain::analysis;
namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;
namespace p = ssdtrain::parallel;
using ssdtrain::testing::TestContext;

namespace {

m::ModelConfig small_config(bool flash = true) {
  m::ModelConfig cfg;
  cfg.hidden = 2048;
  cfg.layers = 2;
  cfg.heads = 16;
  cfg.seq = 512;
  cfg.vocab = 32000;
  cfg.micro_batch = 4;
  cfg.flash_attention = flash;
  return cfg;  // empty workload resolves to a bidirectional dense stack
}

/// A dense-MHA layer with the old five-argument shape, for the per-layer
/// accounting tests.
std::unique_ptr<m::TransformerLayer> make_layer(std::string name,
                                                std::int64_t hidden,
                                                std::int64_t heads,
                                                bool causal, bool flash) {
  ssdtrain::workload::AttentionSpec attn;
  attn.causal = causal;
  return std::make_unique<m::TransformerLayer>(
      std::move(name), hidden, heads, attn, ssdtrain::workload::FfnSpec{},
      flash);
}

}  // namespace

TEST(ModuleBase, HooksFireAroundForward) {
  hw::DeviceAllocator alloc(u::gib(8));
  TestContext ctx(alloc);
  m::LayerNorm ln("ln", 2048);
  std::vector<std::string> order;
  ln.register_forward_pre_hook(
      [&](m::Module& mod, m::ExecutionContext&) {
        order.push_back("pre:" + mod.name());
      });
  ln.register_forward_hook([&](m::Module& mod, m::ExecutionContext&) {
    order.push_back("post:" + mod.name());
  });
  auto x = ctx.make_activation("x", {512, 4, 2048},
                               ssdtrain::tensor::DType::fp16);
  ln.forward(ctx, x);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "pre:ln");
  EXPECT_EQ(order[1], "post:ln");
}

TEST(ModuleBase, HookRemovalStopsFiring) {
  hw::DeviceAllocator alloc(u::gib(8));
  TestContext ctx(alloc);
  m::Gelu gelu("g");
  int count = 0;
  auto handle = gelu.register_forward_pre_hook(
      [&](m::Module&, m::ExecutionContext&) { ++count; });
  auto x = ctx.make_activation("x", {512, 4, 2048},
                               ssdtrain::tensor::DType::fp16);
  gelu.forward(ctx, x);
  gelu.remove_hook(handle);
  gelu.forward(ctx, x);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(gelu.hook_count(), 0u);
}

TEST(ModuleBase, VisitCoversWholeTree) {
  auto layer_ptr = make_layer("l", 2048, 16, false, true);
  m::TransformerLayer& layer = *layer_ptr;
  int count = 0;
  layer.visit([&](m::Module&) { ++count; });
  // layer + ln1 + attn(1 + qkv + core + proj + dropout) + ln2 +
  // mlp(1 + fc1 + gelu + fc2 + dropout) = 13.
  EXPECT_EQ(count, 13);
}

// Saved-activation accounting: the simulated layer must register exactly
// the bytes the closed-form model predicts (34*s*b*h at TP=1 with flash
// attention; s*b*h*(10+24/t) under TP; +5*a*s^2*b/t unfused).
struct ActivationCase {
  bool flash;
  int tp;
};

class LayerActivationBytes
    : public ::testing::TestWithParam<ActivationCase> {};

TEST_P(LayerActivationBytes, MatchesClosedFormModel) {
  const auto param = GetParam();
  auto cfg = small_config(param.flash);
  p::ParallelConfig parallel;
  parallel.tensor_parallel = param.tp;

  hw::DeviceAllocator alloc(u::gib(16));
  TestContext ctx(alloc, parallel);
  ctx.install_recording_hooks();

  auto layer_ptr = make_layer("layer0", cfg.hidden, cfg.heads, false,
                              cfg.flash_attention);
  m::TransformerLayer& layer = *layer_ptr;
  auto x = ctx.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                               ssdtrain::tensor::DType::fp16);
  layer.forward(ctx, x);

  const auto expected = a::layer_activation_bytes(cfg, parallel);
  EXPECT_EQ(ctx.recorded_bytes, expected)
      << "flash=" << param.flash << " tp=" << param.tp;
}

INSTANTIATE_TEST_SUITE_P(FlashAndTp, LayerActivationBytes,
                         ::testing::Values(ActivationCase{true, 1},
                                           ActivationCase{true, 2},
                                           ActivationCase{true, 4},
                                           ActivationCase{false, 1},
                                           ActivationCase{false, 2},
                                           ActivationCase{false, 4}));

TEST(LayerAccounting, DedupCatchesDoubleSaves) {
  // The attention output is saved by both the flash core and the output
  // projection; fc inputs are shared with gelu outputs. Dedup must fire.
  auto cfg = small_config();
  hw::DeviceAllocator alloc(u::gib(16));
  TestContext ctx(alloc);
  ctx.install_recording_hooks();
  auto layer_ptr = make_layer("layer0", cfg.hidden, cfg.heads, false, true);
  m::TransformerLayer& layer = *layer_ptr;
  auto x = ctx.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                               ssdtrain::tensor::DType::fp16);
  layer.forward(ctx, x);
  EXPECT_GE(ctx.dedup_hits, 1u);
}

TEST(LayerAccounting, ForwardGemmFlopsMatchFormula) {
  auto cfg = small_config();
  hw::DeviceAllocator alloc(u::gib(16));
  TestContext ctx(alloc);
  auto layer_ptr = make_layer("layer0", cfg.hidden, cfg.heads, false, true);
  m::TransformerLayer& layer = *layer_ptr;
  auto x = ctx.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                               ssdtrain::tensor::DType::fp16);
  layer.forward(ctx, x);
  p::ParallelConfig parallel;
  const double expected = a::layer_forward_flops(cfg, parallel);
  // Elementwise kernels add a little on top of the GEMM total.
  EXPECT_GT(ctx.total_flops, expected);
  EXPECT_LT(ctx.total_flops, expected * 1.02);
}

TEST(LayerAccounting, TpShardsComputeAndAddsCollectives) {
  auto cfg = small_config();
  hw::DeviceAllocator alloc(u::gib(16));
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  TestContext ctx1(alloc), ctx2(alloc, tp2);
  auto l1_ptr = make_layer("a", cfg.hidden, cfg.heads, false, true);
  auto l2_ptr = make_layer("b", cfg.hidden, cfg.heads, false, true);
  m::TransformerLayer& l1 = *l1_ptr;
  m::TransformerLayer& l2 = *l2_ptr;
  auto x1 = ctx1.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                                 ssdtrain::tensor::DType::fp16);
  l1.forward(ctx1, x1);
  auto x2 = ctx2.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                                 ssdtrain::tensor::DType::fp16);
  l2.forward(ctx2, x2);
  EXPECT_NEAR(ctx2.total_flops, ctx1.total_flops / 2.0,
              ctx1.total_flops * 0.02);
  EXPECT_EQ(ctx1.all_reduces, 0u);  // tp=1: collectives elided
  EXPECT_EQ(ctx2.all_reduces, 2u);  // proj + fc2 outputs
}

TEST(LayerAccounting, BackwardConsumesStateExactlyOnce) {
  auto cfg = small_config();
  hw::DeviceAllocator alloc(u::gib(16));
  TestContext ctx(alloc);
  ctx.install_recording_hooks();
  auto layer_ptr = make_layer("layer0", cfg.hidden, cfg.heads, false, true);
  m::TransformerLayer& layer = *layer_ptr;
  auto x = ctx.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                               ssdtrain::tensor::DType::fp16);
  auto y = layer.forward(ctx, x);
  auto g = ctx.make_activation("dy", y.shape(), y.dtype());
  auto dx = layer.backward(ctx, g);
  EXPECT_EQ(dx.shape(), x.shape());
  // State was popped: a second backward has nothing to consume.
  EXPECT_THROW(layer.backward(ctx, g), u::ContractViolation);
}

TEST(LayerAccounting, BackwardFlopsRoughlyTwiceForward) {
  auto cfg = small_config();
  hw::DeviceAllocator alloc(u::gib(16));
  TestContext ctx(alloc);
  ctx.install_recording_hooks();
  auto layer_ptr = make_layer("layer0", cfg.hidden, cfg.heads, false, true);
  m::TransformerLayer& layer = *layer_ptr;
  auto x = ctx.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                               ssdtrain::tensor::DType::fp16);
  auto y = layer.forward(ctx, x);
  const double fwd_flops = ctx.total_flops;
  auto g = ctx.make_activation("dy", y.shape(), y.dtype());
  layer.backward(ctx, g);
  const double bwd_flops = ctx.total_flops - fwd_flops;
  EXPECT_GT(bwd_flops / fwd_flops, 1.8);
  EXPECT_LT(bwd_flops / fwd_flops, 2.4);
}

TEST(Models, ConfigsFollowPaperHyperparameters) {
  const auto bert = m::bert_config(12288, 3, 16);
  EXPECT_EQ(bert.heads, 96);  // head dimension 128
  EXPECT_EQ(bert.seq, 1024);
  EXPECT_EQ(bert.vocab % 256, 0);  // padded for vocab parallelism
  const auto gpt = m::gpt_config(16384, 2, 16);
  EXPECT_EQ(gpt.heads, 128);
  const auto t5 = m::t5_config(8192, 4, 16);
  EXPECT_EQ(t5.name, "T5");
  EXPECT_TRUE(t5.workload.has_cross_attention());
}

TEST(Models, T5SplitsLayersPerPaper) {
  // "The number of decoders is half of the total number of layers, rounded
  // down."
  for (int layers : {2, 3, 4, 5}) {
    auto cfg = m::t5_config(2048, layers, 2);
    cfg.seq = 256;
    m::T5Model model(cfg);
    EXPECT_EQ(model.decoder_count(), layers / 2);
    EXPECT_EQ(model.encoder_count(), layers - layers / 2);
  }
}

TEST(Models, ParameterCountMatchesTwelveLH2) {
  auto cfg = small_config();
  m::StackModel model(cfg);
  const double params = model.parameter_count(1);
  const double layer_params = 12.0 * static_cast<double>(cfg.hidden) *
                              static_cast<double>(cfg.hidden) * cfg.layers;
  const double embed = 2.0 * static_cast<double>(cfg.vocab) *
                       static_cast<double>(cfg.hidden);
  EXPECT_NEAR(params, layer_params + embed + 256 * cfg.hidden,
              0.02 * params);
  // TP halves the shardable parameters.
  EXPECT_LT(model.parameter_count(2), params);
}

TEST(Models, FullStepRunsAndReleasesActivations) {
  auto cfg = small_config();
  hw::DeviceAllocator alloc(u::gib(24));
  TestContext ctx(alloc);
  m::StackModel model(cfg);
  auto loss = model.forward_step(ctx);
  EXPECT_TRUE(loss.defined());
  model.backward_step(ctx);
  loss.reset();
  ctx.drop_kept();
  // Weights and gradients persist; every activation handle is released
  // once the step finishes (graph nodes cleared by the backward pass).
  EXPECT_GT(alloc.live(hw::MemoryTag::weights), 0);
  EXPECT_EQ(alloc.live(hw::MemoryTag::activation), 0);
}

TEST(Models, T5FullStepRuns) {
  auto cfg = small_config();
  cfg.layers = 3;
  cfg.workload = ssdtrain::workload::WorkloadSpec::encoder_decoder(2, 1);
  hw::DeviceAllocator alloc(u::gib(24));
  TestContext ctx(alloc);
  m::T5Model model(cfg);
  auto loss = model.forward_step(ctx);
  model.backward_step(ctx);
  loss.reset();
  ctx.drop_kept();
  EXPECT_EQ(alloc.live(hw::MemoryTag::activation), 0);
}

TEST(Models, RecomputeModeReexecutesForward) {
  auto cfg = small_config();
  hw::DeviceAllocator alloc(u::gib(24));
  TestContext normal_ctx(alloc);
  m::StackModel normal(cfg);
  auto loss = normal.forward_step(normal_ctx);
  normal.backward_step(normal_ctx);
  const auto normal_kernels = normal_ctx.kernels;

  hw::DeviceAllocator alloc2(u::gib(24));
  TestContext recompute_ctx(alloc2);
  recompute_ctx.set_recompute(true);
  m::StackModel recompute(cfg);
  auto loss2 = recompute.forward_step(recompute_ctx);
  recompute.backward_step(recompute_ctx);
  // Each layer's forward ran twice.
  EXPECT_GT(recompute_ctx.kernels, normal_kernels);
  EXPECT_EQ(recompute_ctx.recompute_segments_closed, cfg.layers);
  EXPECT_EQ(recompute_ctx.recompute_segments_open, 0);
}

TEST(Models, UnfusedAttentionSavesScoreMatrices) {
  auto flash_cfg = small_config(true);
  auto unfused_cfg = small_config(false);
  p::ParallelConfig parallel;
  hw::DeviceAllocator alloc(u::gib(32));

  TestContext flash_ctx(alloc);
  flash_ctx.install_recording_hooks();
  auto flash_ptr = make_layer("f", flash_cfg.hidden, flash_cfg.heads,
                              false, true);
  m::TransformerLayer& flash_layer = *flash_ptr;
  auto x1 = flash_ctx.make_activation(
      "x", {flash_cfg.seq, flash_cfg.micro_batch, flash_cfg.hidden},
      ssdtrain::tensor::DType::fp16);
  flash_layer.forward(flash_ctx, x1);

  TestContext unfused_ctx(alloc);
  unfused_ctx.install_recording_hooks();
  auto unfused_ptr = make_layer("u", unfused_cfg.hidden,
                                unfused_cfg.heads, false, false);
  m::TransformerLayer& unfused_layer = *unfused_ptr;
  auto x2 = unfused_ctx.make_activation(
      "x", {unfused_cfg.seq, unfused_cfg.micro_batch, unfused_cfg.hidden},
      ssdtrain::tensor::DType::fp16);
  unfused_layer.forward(unfused_ctx, x2);

  const auto extra = unfused_ctx.recorded_bytes - flash_ctx.recorded_bytes;
  const auto expected =
      static_cast<u::Bytes>(5.0 * unfused_cfg.heads * unfused_cfg.seq *
                            unfused_cfg.seq * unfused_cfg.micro_batch);
  EXPECT_EQ(extra, expected);
}
