// Tests for the SSD and CPU offloaders: transfer timing over the simulated
// fabric, producer-gated stores, deferred releases, FIFO pools, the GDS vs
// bounce-buffer paths, and the CUDA malloc hook library.

#include <gtest/gtest.h>

#include "ssdtrain/core/malloc_hook.hpp"
#include "ssdtrain/core/offloader.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/tensor/tensor_id.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace core = ssdtrain::core;
namespace hw = ssdtrain::hw;
namespace t = ssdtrain::tensor;
namespace sim = ssdtrain::sim;
namespace u = ssdtrain::util;

namespace {

class OffloaderTest : public ::testing::Test {
 protected:
  OffloaderTest()
      : node_(hw::catalog::single_gpu_node(2)),
        factory_(*node_.gpu(0).allocator) {}

  t::Tensor make_tensor(const char* name, u::Bytes mib_size = 256) {
    auto tensor = factory_.cuda(name, {u::mib(mib_size) / 2},
                                t::DType::fp16, hw::MemoryTag::activation);
    return tensor;
  }

  t::TensorId next_id() { return ids_.get_id(last_); }

  hw::TrainingNode node_;
  t::TensorFactory factory_;
  t::IdAssigner ids_;
  t::Tensor last_;
};

}  // namespace

TEST_F(OffloaderTest, StoreCompletesAtArrayBandwidth) {
  core::SsdOffloader off(node_, factory_, {});
  auto x = make_tensor("x", 1220);  // ~1.28 GB
  const auto id = ids_.get_id(x);
  auto done = off.store(id, x, nullptr);
  ASSERT_TRUE(done.has_value());
  node_.simulator().run();
  EXPECT_TRUE((*done)->done());
  // 2-SSD array writes at 12.2 GB/s; ~1.28 GB takes ~0.105 s.
  EXPECT_NEAR((*done)->completion_time(), 1.28e9 / 12.2e9, 0.01);
  EXPECT_EQ(off.stats().stores, 1u);
  EXPECT_EQ(off.stats().bytes_stored, x.bytes());
}

TEST_F(OffloaderTest, StoreWaitsForProducerKernel) {
  core::SsdOffloader off(node_, factory_, {});
  auto& s = node_.simulator();
  auto x = make_tensor("x");
  auto ready = sim::Completion::create(s, "producer");
  const auto id = ids_.get_id(x);
  auto done = off.store(id, x, ready);
  ASSERT_TRUE(done.has_value());
  s.schedule_at(1.0, [&] { ready->fire(); });
  s.run();
  // The transfer could not start before t=1.
  EXPECT_GT((*done)->completion_time(), 1.0);
}

TEST_F(OffloaderTest, StorePinsMemoryUntilTransferDone) {
  core::SsdOffloader off(node_, factory_, {});
  auto& alloc = *node_.gpu(0).allocator;
  const auto id = [&] {
    auto x = make_tensor("x");
    auto done = off.store(ids_.get_id(x), x, nullptr);
    (void)done;
    return ids_.get_id(x);
    // x handle drops here, but the DMA must still read the memory.
  }();
  (void)id;
  EXPECT_GT(alloc.live(hw::MemoryTag::activation), 0);
  node_.simulator().run();
  EXPECT_EQ(alloc.live(hw::MemoryTag::activation), 0);
}

TEST_F(OffloaderTest, LoadReturnsGatedTensor) {
  core::SsdOffloader off(node_, factory_, {});
  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  off.store(id, x, nullptr);
  node_.simulator().run();

  auto ticket = off.load(id, "x.reload", x.shape(), x.dtype());
  EXPECT_TRUE(ticket.tensor.defined());
  EXPECT_FALSE(ticket.done->done());
  EXPECT_EQ(ticket.tensor.storage()->ready_event(), ticket.done);
  node_.simulator().run();
  EXPECT_TRUE(ticket.done->done());
  EXPECT_EQ(off.stats().loads, 1u);
}

TEST_F(OffloaderTest, ReleaseTrimsExtent) {
  core::SsdOffloader off(node_, factory_, {});
  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  off.store(id, x, nullptr);
  node_.simulator().run();
  EXPECT_GT(node_.array(0).live_bytes(), 0);
  off.release(id);
  EXPECT_EQ(node_.array(0).live_bytes(), 0);
  EXPECT_EQ(off.stats().releases, 1u);
}

TEST_F(OffloaderTest, ReleaseDuringStoreIsDeferred) {
  core::SsdOffloader off(node_, factory_, {});
  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  off.store(id, x, nullptr);
  off.release(id);  // store still in flight
  EXPECT_EQ(off.stats().releases, 0u);
  node_.simulator().run();
  EXPECT_EQ(off.stats().releases, 1u);
  EXPECT_EQ(node_.array(0).live_bytes(), 0);
}

TEST_F(OffloaderTest, SequentialTensorWritesKeepWafNearOne) {
  core::SsdOffloader off(node_, factory_, {});
  for (int step = 0; step < 20; ++step) {
    auto x = make_tensor("x", 512);
    const auto id = ids_.get_id(x);
    off.store(id, x, nullptr);
    node_.simulator().run();
    off.release(id);
  }
  EXPECT_LT(node_.array(0).write_amplification(), 1.05);
}

TEST_F(OffloaderTest, DuplicateStoreRejected) {
  core::SsdOffloader off(node_, factory_, {});
  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  off.store(id, x, nullptr);
  EXPECT_THROW(off.store(id, x, nullptr), u::ContractViolation);
}

TEST_F(OffloaderTest, BouncePathSlowerThanGds) {
  core::SsdOffloaderConfig gds_cfg, bounce_cfg;
  bounce_cfg.use_gds = false;
  double t_gds = 0.0, t_bounce = 0.0;
  {
    hw::TrainingNode node(hw::catalog::single_gpu_node(4));
    t::TensorFactory factory(*node.gpu(0).allocator);
    core::SsdOffloader off(node, factory, gds_cfg);
    t::IdAssigner ids;
    auto x = factory.cuda("x", {u::gib(2) / 2}, t::DType::fp16,
                          hw::MemoryTag::activation);
    auto done = off.store(ids.get_id(x), x, nullptr);
    node.simulator().run();
    t_gds = (*done)->completion_time();
  }
  {
    hw::TrainingNode node(hw::catalog::single_gpu_node(4));
    t::TensorFactory factory(*node.gpu(0).allocator);
    core::SsdOffloader off(node, factory, bounce_cfg);
    t::IdAssigner ids;
    auto x = factory.cuda("x", {u::gib(2) / 2}, t::DType::fp16,
                          hw::MemoryTag::activation);
    auto done = off.store(ids.get_id(x), x, nullptr);
    node.simulator().run();
    t_bounce = (*done)->completion_time();
  }
  EXPECT_GE(t_bounce, t_gds);
  EXPECT_NE(core::SsdOffloader(node_, factory_, bounce_cfg).target_name(),
            core::SsdOffloader(node_, factory_, gds_cfg).target_name());
}

TEST_F(OffloaderTest, FifoPoolSerialisesStoresPerWorker) {
  core::SsdOffloaderConfig cfg;
  cfg.store_workers = 1;
  core::SsdOffloader off(node_, factory_, cfg);
  auto a = make_tensor("a", 512);
  auto b = make_tensor("b", 512);
  auto da = off.store(ids_.get_id(a), a, nullptr);
  auto db = off.store(ids_.get_id(b), b, nullptr);
  node_.simulator().run();
  // One worker: b starts only after a finishes.
  EXPECT_GE((*db)->completion_time(),
            2.0 * (*da)->completion_time() * 0.99);
}

TEST_F(OffloaderTest, CpuOffloaderUsesPinnedPool) {
  node_.pinned_pool().resize(u::gib(2));
  core::CpuOffloader off(node_, factory_, {});
  auto x = make_tensor("x");
  const auto id = ids_.get_id(x);
  auto done = off.store(id, x, nullptr);
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(node_.pinned_pool().used(), 0);
  node_.simulator().run();
  auto ticket = off.load(id, "x.back", x.shape(), x.dtype());
  node_.simulator().run();
  EXPECT_TRUE(ticket.done->done());
  off.release(id);
  EXPECT_EQ(node_.pinned_pool().used(), 0);
}

TEST_F(OffloaderTest, CpuOffloaderRefusesWhenPoolExhausted) {
  node_.pinned_pool().resize(u::mib(64));
  core::CpuOffloader off(node_, factory_, {});
  auto x = make_tensor("x", 256);  // larger than the pool
  const auto id = ids_.get_id(x);
  auto done = off.store(id, x, nullptr);
  EXPECT_FALSE(done.has_value());
  EXPECT_EQ(off.stats().failed_stores, 1u);
}

TEST(MallocHook, TracksRegistrations) {
  hw::DeviceAllocator alloc(u::gib(1));
  core::CudaMallocHookLibrary hook;
  hook.install(alloc);
  auto a = alloc.allocate(u::mib(100), hw::MemoryTag::activation);
  EXPECT_EQ(hook.registered_bytes(), a.bytes);
  EXPECT_EQ(hook.registrations(), 1u);
  alloc.free(a);
  EXPECT_EQ(hook.registered_bytes(), 0);
  EXPECT_EQ(hook.deregistrations(), 1u);
}

TEST(MallocHook, PreRegistrationCutsSetupLatency) {
  core::CudaMallocHookLibrary uninstalled;
  hw::DeviceAllocator alloc(u::gib(1));
  core::CudaMallocHookLibrary installed;
  installed.install(alloc);
  EXPECT_LT(installed.transfer_setup_latency(u::mib(256)),
            uninstalled.transfer_setup_latency(u::mib(256)) / 10.0);
}

TEST(MallocHook, DoubleInstallRejected) {
  hw::DeviceAllocator alloc(u::gib(1));
  core::CudaMallocHookLibrary hook;
  hook.install(alloc);
  EXPECT_THROW(hook.install(alloc), u::ContractViolation);
}
