// Orchestrator suite: the fault-tolerant sweep supervision ladder end to
// end. This binary is dual-mode — run as `test_orchestrate` it is a normal
// gtest suite; run as `test_orchestrate orchestrate-worker ...` it becomes
// a tiny but *real* sweep worker (sweep::select_points + CsvResume +
// CsvProgress + ChaosExec, the exact machinery the benches use) whose
// misbehaviour is scripted by positional tokens:
//
//   grid=N           sweep size (axis "i" = 0..N-1; row value = i*i+7)
//   crash-times=K    exit nonzero after committing one row, on the first K
//                    launches (launch counting survives relaunches through
//                    a <csv>.attempts side file)
//   stall-times=K    freeze forever (no rows, no exit) on the first K
//                    launches — the hung-worker case
//   sleep-ms=N       per-point delay, to keep stall detection honest
//   cache-dir=DIR    per point, run a tiny TrainingSession against a fresh
//                    on-disk ProgramCache in DIR — every point of every
//                    shard races the same key file
//
// The gtest half spawns this same binary (argv[0] via /proc/self/exe)
// through the real LocalLauncher under a real Supervisor, so crash
// relaunch, hung-shard kill, backoff exhaustion, seeded chaos kills, torn
// tail repair, and merge verification all run against actual processes.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/orchestrate/chaos.hpp"
#include "ssdtrain/orchestrate/launcher.hpp"
#include "ssdtrain/orchestrate/merge.hpp"
#include "ssdtrain/orchestrate/supervisor.hpp"
#include "ssdtrain/runtime/program_cache.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/sweep/chaos_exec.hpp"
#include "ssdtrain/sweep/cli.hpp"
#include "ssdtrain/sweep/progress.hpp"
#include "ssdtrain/sweep/resume.hpp"
#include "ssdtrain/util/check.hpp"

namespace fs = std::filesystem;
namespace m = ssdtrain::modules;
namespace orc = ssdtrain::orchestrate;
namespace rt = ssdtrain::runtime;
namespace sweep = ssdtrain::sweep;
namespace u = ssdtrain::util;

namespace {

// The shared tiny-session config: the worker's cache-dir points and the
// test's post-run verification must derive the *same* program key, so both
// call this (they are the same binary).
rt::SessionConfig cache_session_config() {
  rt::SessionConfig config;
  config.model = m::bert_config(512, 1, 2);
  return config;
}

// ---------------------------------------------------------------------------
// Worker mode
// ---------------------------------------------------------------------------

int run_worker(int argc, char** argv) {
  const sweep::CliOptions options = sweep::parse_cli(argc, argv);
  std::int64_t grid = 12;
  int crash_times = 0;
  int stall_times = 0;
  int sleep_ms = 0;
  std::string cache_dir;
  for (const std::string& token : options.positional) {
    if (token == "orchestrate-worker") continue;
    const std::size_t eq = token.find('=');
    u::check(eq != std::string::npos, "worker: bad token '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "grid") {
      grid = std::stoll(value);
    } else if (key == "crash-times") {
      crash_times = std::stoi(value);
    } else if (key == "stall-times") {
      stall_times = std::stoi(value);
    } else if (key == "sleep-ms") {
      sleep_ms = std::stoi(value);
    } else if (key == "cache-dir") {
      cache_dir = value;
    } else {
      u::check(false, "worker: unknown token '" + token + "'");
    }
  }
  u::check(options.csv_enabled(), "worker: needs --csv");

  // Launch counting that survives relaunches: the supervisor restarts this
  // process with the same --csv path, so a side file is the attempt clock.
  const std::string attempts_path = options.csv_path + ".attempts";
  int attempt = 1;
  {
    std::ifstream in(attempts_path);
    int stored = 0;
    if (in >> stored) attempt = stored + 1;
  }
  {
    std::ofstream out(attempts_path, std::ios::trunc);
    out << attempt;
  }

  // Hung worker: no rows, no exit — only the supervisor's stall timeout
  // (SIGKILL to our process group) ends this launch.
  if (attempt <= stall_times) {
    for (;;) ::pause();
  }

  std::vector<std::int64_t> axis(static_cast<std::size_t>(grid));
  std::iota(axis.begin(), axis.end(), std::int64_t{0});
  sweep::SweepSpec spec;
  spec.axis("i", axis);
  std::vector<sweep::SweepPoint> points = sweep::select_points(spec, options);
  const sweep::CsvResume resume(options.csv_path,
                                std::vector<std::string>{"i"});
  points = resume.remaining(std::move(points));

  sweep::CsvProgress progress(options.csv_path,
                              std::vector<std::string>{"i", "v"},
                              sweep::ChaosExec::parse(options.chaos_exec));
  for (std::size_t idx = 0; idx < points.size(); ++idx) {
    const std::int64_t i = points[idx].i64("i");
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    if (!cache_dir.empty()) {
      // Race the shared on-disk key: a *fresh* cache per point skips the
      // in-process tier, so every point of every shard does disk
      // lookup/store against the same prog-*.sprog file concurrently.
      auto cache = std::make_shared<rt::ProgramCache>(
          rt::ProgramCacheConfig{cache_dir});
      rt::SessionConfig config = cache_session_config();
      config.program_cache = cache.get();
      const rt::ProgramKey key = rt::session_program_key(config);
      rt::TrainingSession session(std::move(config));
      session.run_step();
      rt::ProgramCache fresh(rt::ProgramCacheConfig{cache_dir});
      u::check(fresh.lookup(key) != nullptr,
               "worker: program-cache round trip lost the stored program");
    }
    progress.commit(idx, {std::to_string(i), std::to_string(i * i + 7)});
    // Scripted crash: die *after* making one row of progress, so repeated
    // relaunches converge (the guarantee seeded chaos kills also keep).
    if (attempt <= crash_times) return 42;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// gtest helpers
// ---------------------------------------------------------------------------

std::string self_path() { return fs::canonical("/proc/self/exe").string(); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string expected_csv(std::int64_t grid) {
  std::string out = "i,v\n";
  for (std::int64_t i = 0; i < grid; ++i) {
    out += std::to_string(i) + "," + std::to_string(i * i + 7) + "\n";
  }
  return out;
}

// A scratch dir per test plus a quiet supervisor config pointed at it.
struct Harness {
  explicit Harness(const std::string& name) {
    dir = fs::path(::testing::TempDir()) / ("orchestrate_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
  }

  orc::SupervisorConfig config(const std::vector<std::string>& tokens) {
    orc::SupervisorConfig config;
    config.worker_command = {self_path(), "orchestrate-worker"};
    config.worker_command.insert(config.worker_command.end(), tokens.begin(),
                                 tokens.end());
    config.workdir = (dir / "shards").string();
    config.out_csv = (dir / "merged.csv").string();
    config.launcher = &launcher;
    config.poll_interval = 0.02;
    config.backoff_initial = 0.02;
    config.backoff_max = 0.2;
    config.log = [this](const std::string& line) { logs.push_back(line); };
    return config;
  }

  [[nodiscard]] bool logged(std::string_view needle) const {
    for (const std::string& line : logs) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  fs::path dir;
  orc::LocalLauncher launcher;
  std::vector<std::string> logs;
};

// ---------------------------------------------------------------------------
// Unit: chaos grammar + seeded determinism
// ---------------------------------------------------------------------------

TEST(OrchestrateChaos, ParsesTheGrammar) {
  const orc::ChaosSpec both = orc::parse_chaos("kill:rate=0.3,stall:rate=0.1");
  EXPECT_DOUBLE_EQ(both.kill_rate, 0.3);
  EXPECT_DOUBLE_EQ(both.stall_rate, 0.1);
  EXPECT_TRUE(both.enabled());

  const orc::ChaosSpec fixed = orc::parse_chaos("kill:rate=1,after=2,tear=1");
  EXPECT_DOUBLE_EQ(fixed.kill_rate, 1.0);
  EXPECT_EQ(fixed.after, 2);
  EXPECT_DOUBLE_EQ(fixed.tear, 1.0);

  EXPECT_FALSE(orc::parse_chaos("").enabled());
  EXPECT_THROW(orc::parse_chaos("explode:rate=1"), u::ContractViolation);
  EXPECT_THROW(orc::parse_chaos("kill:rate=lots"), u::ContractViolation);
}

TEST(OrchestrateChaos, DrawsAreDeterministicPerShardAndAttempt) {
  const orc::ChaosSpec spec = orc::parse_chaos("kill:rate=0.5,stall:rate=0.2");
  const orc::ChaosEngine a(spec, 7);
  const orc::ChaosEngine b(spec, 7);
  const orc::ChaosEngine other(spec, 8);
  bool any_differs_across_seeds = false;
  for (int shard = 0; shard < 4; ++shard) {
    for (int attempt = 0; attempt < 6; ++attempt) {
      const orc::ChaosDecision first = a.draw(shard, attempt);
      const orc::ChaosDecision again = a.draw(shard, attempt);
      const orc::ChaosDecision twin = b.draw(shard, attempt);
      EXPECT_EQ(first.kind, again.kind);
      EXPECT_EQ(first.after, again.after);
      EXPECT_EQ(first.tear, again.tear);
      EXPECT_EQ(first.kind, twin.kind);
      EXPECT_EQ(first.after, twin.after);
      if (other.draw(shard, attempt).kind != first.kind) {
        any_differs_across_seeds = true;
      }
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(OrchestrateChaos, DecisionsRenderAsExecSpecs) {
  orc::ChaosDecision kill;
  kill.kind = orc::ChaosDecision::Kind::kill;
  kill.after = 3;
  kill.tear = true;
  EXPECT_EQ(kill.to_exec_spec(), "kill:after=3,tear=1");

  orc::ChaosDecision stall;
  stall.kind = orc::ChaosDecision::Kind::stall;
  stall.after = 2;
  EXPECT_EQ(stall.to_exec_spec(), "stall:after=2");

  EXPECT_EQ(orc::ChaosDecision{}.to_exec_spec(), "");

  const sweep::ChaosExec exec = sweep::ChaosExec::parse(kill.to_exec_spec());
  EXPECT_TRUE(exec.enabled());
  EXPECT_EQ(exec.after, 3);
  EXPECT_TRUE(exec.tear);
  EXPECT_FALSE(sweep::ChaosExec::parse("").enabled());
  EXPECT_THROW(sweep::ChaosExec::parse("kill:after=0"), u::ContractViolation);
}

// ---------------------------------------------------------------------------
// Unit: CSV scan + merge diagnostics
// ---------------------------------------------------------------------------

TEST(OrchestrateMerge, ScanCountsCompleteRowsAndSpotsTornTails) {
  Harness h("scan");
  const std::string path = (h.dir / "scan.csv").string();
  write_file(path, "i,v\n0,7\n1,8\n2,");
  const orc::CsvScan scan = orc::scan_csv(path);
  EXPECT_TRUE(scan.exists);
  EXPECT_EQ(scan.rows, 2u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(orc::scan_csv((h.dir / "nope.csv").string()).exists);
}

TEST(OrchestrateMerge, ReportsEveryBadShardAndWritesNothing) {
  Harness h("merge_bad");
  const std::string s0 = (h.dir / "shard-0.csv").string();
  const std::string s1 = (h.dir / "shard-1.csv").string();
  const std::string s2 = (h.dir / "shard-2.csv").string();
  write_file(s0, "i,v\n0,7\n");
  // shard 1 is missing entirely; shard 2 has a torn tail.
  write_file(s2, "i,v\n2,11\n3,");
  const std::string out = (h.dir / "merged.csv").string();
  const orc::MergeReport report = orc::merge_shards({s0, s1, s2}, out);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.bad_shards(), (std::vector<std::size_t>{1, 2}));
  const std::string text = orc::describe(report);
  EXPECT_NE(text.find("shard 1"), std::string::npos);
  EXPECT_NE(text.find("shard 2"), std::string::npos);
  EXPECT_FALSE(fs::exists(out));
}

TEST(OrchestrateMerge, InterleavesRoundRobinByteIdentically) {
  Harness h("merge_ok");
  const std::string s0 = (h.dir / "shard-0.csv").string();
  const std::string s1 = (h.dir / "shard-1.csv").string();
  const std::string s2 = (h.dir / "shard-2.csv").string();
  // Shard i of 3 holds grid positions j with j mod 3 == i (grid of 7, so
  // the shards are uneven: 3/2/2 rows).
  write_file(s0, "i,v\n0,7\n3,16\n6,43\n");
  write_file(s1, "i,v\n1,8\n4,23\n");
  write_file(s2, "i,v\n2,11\n5,32\n");
  const std::string out = (h.dir / "merged.csv").string();
  const orc::MergeReport report = orc::merge_shards({s0, s1, s2}, out);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.rows, 7u);
  EXPECT_EQ(read_file(out), expected_csv(7));
}

// ---------------------------------------------------------------------------
// Unit: launchers
// ---------------------------------------------------------------------------

TEST(OrchestrateLauncher, LocalReportsExitCodesAndKills) {
  Harness h("launcher");
  orc::LocalLauncher launcher;
  const std::string log = (h.dir / "worker.log").string();

  const int ok = launcher.spawn(0, {"/bin/sh", "-c", "echo hi; exit 3"}, log);
  const orc::ExitStatus status = launcher.wait(ok);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 3);
  EXPECT_NE(read_file(log).find("hi"), std::string::npos);

  const int hung = launcher.spawn(0, {"/bin/sh", "-c", "sleep 30"}, log);
  EXPECT_FALSE(launcher.poll(hung).has_value());
  launcher.kill(hung);
  const orc::ExitStatus killed = launcher.wait(hung);
  EXPECT_TRUE(killed.signaled);
  EXPECT_EQ(killed.signal, SIGKILL);

  const int missing = launcher.spawn(0, {(h.dir / "no-such-bin").string()},
                                     log);
  EXPECT_EQ(launcher.wait(missing).code, 127);
}

TEST(OrchestrateLauncher, CommandTemplateFormatsQuotedCommands) {
  EXPECT_EQ(orc::shell_quote("plain"), "'plain'");
  EXPECT_EQ(orc::shell_quote("a b"), "'a b'");
  EXPECT_EQ(orc::shell_quote("it's"), "'it'\\''s'");

  const orc::CommandTemplateLauncher launcher("ssh {host} {cmd} # {shard}",
                                              {"gpu01", "gpu02"});
  const std::string formatted =
      launcher.format(3, {"/opt/bench", "--csv", "a b.csv"});
  EXPECT_EQ(formatted, "ssh gpu02 '/opt/bench' '--csv' 'a b.csv' # 3");
}

TEST(OrchestrateLauncher, CommandTemplateRunsThroughTheShell) {
  Harness h("template");
  // A local "transport": the template wraps the worker command in sh, the
  // same way `ssh {host} {cmd}` would on a real cluster.
  orc::CommandTemplateLauncher launcher("{cmd}", {});
  const std::string log = (h.dir / "t.log").string();
  const int handle = launcher.spawn(0, {"/bin/echo", "shard zero"}, log);
  EXPECT_TRUE(launcher.wait(handle).ok());
  EXPECT_NE(read_file(log).find("shard zero"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integration: the supervision ladder against real worker processes
// ---------------------------------------------------------------------------

TEST(OrchestrateSupervisor, CleanShardedRunMatchesSingleProcessBytes) {
  Harness h("clean");
  orc::SupervisorConfig config = h.config({"grid=12"});
  config.shard_count = 3;
  const orc::SupervisorReport report = orc::Supervisor(config).run();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.merged_rows, 12u);
  EXPECT_EQ(report.failed_shards(), 0);
  for (const orc::ShardReport& shard : report.shards) {
    EXPECT_EQ(shard.launches, 1);
  }
  EXPECT_EQ(read_file(config.out_csv), expected_csv(12));
}

TEST(OrchestrateSupervisor, CrashedShardsRelaunchAndResume) {
  Harness h("crash");
  orc::SupervisorConfig config = h.config({"grid=8", "crash-times=2"});
  config.shard_count = 2;
  const orc::SupervisorReport report = orc::Supervisor(config).run();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(read_file(config.out_csv), expected_csv(8));
  for (const orc::ShardReport& shard : report.shards) {
    EXPECT_EQ(shard.crashes, 2);
    EXPECT_EQ(shard.launches, 3);
    EXPECT_EQ(shard.rows, 4u);
  }
  EXPECT_TRUE(h.logged("relaunching"));
  EXPECT_TRUE(h.logged("resuming from"));
}

TEST(OrchestrateSupervisor, HungShardsAreKilledAndRelaunched) {
  Harness h("stall");
  orc::SupervisorConfig config = h.config({"grid=6", "stall-times=1"});
  config.stall_timeout = 0.4;
  const orc::SupervisorReport report = orc::Supervisor(config).run();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(read_file(config.out_csv), expected_csv(6));
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_EQ(report.shards[0].stalls, 1);
  EXPECT_EQ(report.shards[0].launches, 2);
  EXPECT_TRUE(h.logged("no heartbeat"));
}

TEST(OrchestrateSupervisor, ExhaustedShardsDegradeIntoAFailureReport) {
  Harness h("exhaust");
  orc::SupervisorConfig config = h.config({"grid=12", "crash-times=100"});
  config.max_relaunch = 2;
  const orc::SupervisorReport report = orc::Supervisor(config).run();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failed_shards(), 1);
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_EQ(report.shards[0].launches, 1 + config.max_relaunch);
  // Partial progress is preserved for the next orchestrator run even
  // though the merge was refused.
  EXPECT_EQ(report.shards[0].rows, 3u);
  EXPECT_FALSE(fs::exists(config.out_csv));
  ASSERT_FALSE(report.failure_report_path.empty());
  const std::string text = read_file(report.failure_report_path);
  EXPECT_NE(text.find("shard 0"), std::string::npos);
  EXPECT_NE(text.find("FAILED"), std::string::npos);
}

TEST(OrchestrateSupervisor, SeededChaosKillsStayByteIdentical) {
  Harness h("chaos");
  orc::SupervisorConfig config = h.config({"grid=14"});
  config.shard_count = 2;
  // Every launch is killed (with a torn tail) two rows in, until the last
  // launch has only one row left and exits clean: 7 rows per shard means
  // exactly 3 kills + 1 clean launch per shard.
  config.chaos = orc::parse_chaos("kill:rate=1,after=2,tear=1");
  config.chaos_seed = 7;
  config.max_relaunch = 5;
  const orc::SupervisorReport report = orc::Supervisor(config).run();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(read_file(config.out_csv), expected_csv(14));
  for (const orc::ShardReport& shard : report.shards) {
    EXPECT_EQ(shard.crashes, 3);
    EXPECT_EQ(shard.launches, 4);
    // Satellite: CsvResume's repaired_tail flag surfaces in the report and
    // the supervision log.
    EXPECT_EQ(shard.tail_repairs, 3);
  }
  EXPECT_TRUE(h.logged("torn CSV tail"));
}

TEST(OrchestrateSupervisor, ShardsRaceOneProgramCacheKeySafely) {
  Harness h("cache_race");
  const std::string cache_dir = (h.dir / "progcache").string();
  orc::SupervisorConfig config =
      h.config({"grid=8", "cache-dir=" + cache_dir});
  config.shard_count = 2;
  const orc::SupervisorReport report = orc::Supervisor(config).run();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(read_file(config.out_csv), expected_csv(8));

  // Both shards hammered one key file (fresh cache per point, atomic
  // rename-on-write): the survivor must be a loadable program, not a torn
  // or rejected file.
  rt::ProgramCache cache(rt::ProgramCacheConfig{cache_dir});
  const rt::ProgramKey key = rt::session_program_key(cache_session_config());
  EXPECT_NE(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().disk_rejects, 0u);
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    entries += entry.path().extension() == ".sprog" ? 1 : 0;
  }
  EXPECT_EQ(entries, 1u);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "orchestrate-worker") {
    return run_worker(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
