// Tests for the parallelism model: ring-collective costs, ZeRO memory
// sharding and communication volumes, and configuration validation.

#include <gtest/gtest.h>

#include <utility>

#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/parallel/collectives.hpp"
#include "ssdtrain/parallel/parallel_config.hpp"
#include "ssdtrain/parallel/zero.hpp"
#include "ssdtrain/runtime/cluster_session.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace m = ssdtrain::modules;
namespace p = ssdtrain::parallel;
namespace rt = ssdtrain::runtime;
namespace u = ssdtrain::util;

TEST(ParallelConfig, GpuCountIsProduct) {
  p::ParallelConfig cfg;
  cfg.tensor_parallel = 8;
  cfg.pipeline_parallel = 12;
  cfg.data_parallel = 16;
  EXPECT_EQ(cfg.gpu_count(), 8 * 12 * 16);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ParallelConfig, ZeroRequiresDataParallelism) {
  p::ParallelConfig cfg;
  cfg.zero = p::ZeroStage::stage3;
  EXPECT_THROW(cfg.validate(), u::ContractViolation);
  cfg.data_parallel = 2;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Collectives, SingleRankIsFree) {
  p::FabricSpec fabric{u::gbps(100), u::us(5)};
  EXPECT_DOUBLE_EQ(p::all_reduce_traffic(u::gib(1), 1), 0.0);
  EXPECT_DOUBLE_EQ(p::all_reduce_time(u::gib(1), 1, fabric), 0.0);
}

TEST(Collectives, RingAllReduceTrafficFormula) {
  // 2(n-1)/n * S per rank.
  EXPECT_DOUBLE_EQ(p::all_reduce_traffic(1000, 2), 1000.0);
  EXPECT_DOUBLE_EQ(p::all_reduce_traffic(1000, 4), 1500.0);
  EXPECT_NEAR(p::all_reduce_traffic(1000, 1000), 1998.0, 0.01);
}

TEST(Collectives, GatherAndScatterAreHalfAllReduce) {
  for (int ranks : {2, 4, 8, 64}) {
    EXPECT_DOUBLE_EQ(p::all_gather_traffic(4096, ranks) * 2.0,
                     p::all_reduce_traffic(4096, ranks));
    EXPECT_DOUBLE_EQ(p::reduce_scatter_traffic(4096, ranks),
                     p::all_gather_traffic(4096, ranks));
  }
}

TEST(Collectives, TimeIncludesPerHopLatency) {
  p::FabricSpec fabric{u::gbps(100), u::us(10)};
  const double t2 = p::all_reduce_time(u::mb(1), 2, fabric);
  const double t8 = p::all_reduce_time(u::mb(1), 8, fabric);
  // More ranks: more hops of latency even though traffic saturates at 2S.
  EXPECT_GT(t8, t2);
  EXPECT_GE(t8, 7 * u::us(10));
}

TEST(Collectives, PointToPoint) {
  p::FabricSpec fabric{u::gbps(10), u::us(5)};
  EXPECT_NEAR(p::point_to_point_time(u::gb(1), fabric), 0.1 + 5e-6, 1e-9);
  EXPECT_DOUBLE_EQ(p::point_to_point_time(0, fabric), 0.0);
}

TEST(Zero, StageProgressionShardsMoreState) {
  const double params = 1e9;
  p::ParallelConfig cfg;
  cfg.data_parallel = 8;

  cfg.zero = p::ZeroStage::none;
  const auto none = p::zero_memory_per_gpu(params, cfg);
  cfg.zero = p::ZeroStage::stage1;
  const auto s1 = p::zero_memory_per_gpu(params, cfg);
  cfg.zero = p::ZeroStage::stage2;
  const auto s2 = p::zero_memory_per_gpu(params, cfg);
  cfg.zero = p::ZeroStage::stage3;
  const auto s3 = p::zero_memory_per_gpu(params, cfg);

  EXPECT_GT(none.total(), s1.total());
  EXPECT_GT(s1.total(), s2.total());
  EXPECT_GT(s2.total(), s3.total());
  // Stage 1 shards only optimizer states.
  EXPECT_EQ(s1.parameters, none.parameters);
  EXPECT_EQ(s1.gradients, none.gradients);
  EXPECT_EQ(s1.optimizer_states, none.optimizer_states / 8);
  // Stage 3 shards everything.
  EXPECT_EQ(s3.parameters, none.parameters / 8);
}

TEST(Zero, Stage3MemoryScalesInverselyWithDp) {
  const double params = 1e9;
  p::ParallelConfig a, b;
  a.data_parallel = 4;
  a.zero = p::ZeroStage::stage3;
  b.data_parallel = 16;
  b.zero = p::ZeroStage::stage3;
  EXPECT_NEAR(static_cast<double>(p::zero_memory_per_gpu(params, a).total()) /
                  static_cast<double>(p::zero_memory_per_gpu(params, b).total()),
              4.0, 0.01);
}

TEST(Zero, Stage3TripleTraffic) {
  // ZeRO-3 moves ~3x the gradient-only volume (2x gather + 1x scatter).
  const double param_bytes = 2e9;
  p::ParallelConfig s1, s3;
  s1.data_parallel = s3.data_parallel = 16;
  s1.zero = p::ZeroStage::stage1;
  s3.zero = p::ZeroStage::stage3;
  const double t1 = p::zero_dp_traffic_per_step(param_bytes, s1);
  const double t3 = p::zero_dp_traffic_per_step(param_bytes, s3);
  EXPECT_NEAR(t3 / t1, 1.5, 0.01);  // 3*(n-1)/n vs 2*(n-1)/n
}

TEST(Zero, NoTrafficWithoutDataParallelism) {
  p::ParallelConfig cfg;  // dp = 1
  EXPECT_DOUBLE_EQ(p::zero_dp_traffic_per_step(1e9, cfg), 0.0);
}

// The session path must reject an invalid ParallelConfig at construction
// (the validate() call in TrainingSession / ClusterSession), not deep in
// planning where the error loses its context.
TEST(ParallelConfig, SessionConstructionValidates) {
  {
    rt::SessionConfig config;
    config.model = m::bert_config(1024, 2, 2);
    config.parallel.tensor_parallel = 0;
    EXPECT_THROW(rt::TrainingSession{std::move(config)}, u::ContractViolation);
  }
  {
    rt::ClusterConfig config;
    config.model = m::bert_config(1024, 2, 2);
    config.parallel.zero = p::ZeroStage::stage2;  // ZeRO needs dp > 1
    EXPECT_THROW(rt::ClusterSession{std::move(config)}, u::ContractViolation);
  }
  {
    rt::ClusterConfig config;
    config.model = m::bert_config(1024, 2, 2);
    config.parallel.pipeline_parallel = -2;
    EXPECT_THROW(rt::ClusterSession{std::move(config)}, u::ContractViolation);
  }
}
