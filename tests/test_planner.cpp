// Tests for the adaptive offload planner (paper Fig. 3): the budget is the
// smaller of what is offloadable and what the SSDs can absorb in half a
// step, and it responds correctly to bandwidth starvation.

#include <gtest/gtest.h>

#include "ssdtrain/core/planner.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/util/units.hpp"

namespace core = ssdtrain::core;
namespace m = ssdtrain::modules;
namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

namespace {

core::PlannerInputs base_inputs() {
  core::PlannerInputs inputs;
  inputs.model = m::bert_config(12288, 3, 16);
  inputs.parallel.tensor_parallel = 2;
  inputs.gpu = hw::catalog::a100_pcie_40gb();
  inputs.target_write_bandwidth = u::gbps(24.4);  // the 4-SSD array
  return inputs;
}

}  // namespace

TEST(Planner, FullyOffloadableOnTheEvaluationMachine) {
  const auto plan = core::plan_offload(base_inputs());
  // The Table II array absorbs everything offloadable: the budget equals
  // the offloadable volume and the window has headroom.
  EXPECT_TRUE(plan.fully_offloadable);
  EXPECT_EQ(plan.offload_budget, plan.offloadable_bytes_per_step);
  EXPECT_GT(plan.io_window_bytes, plan.offloadable_bytes_per_step);
  EXPECT_GT(plan.step_time_estimate, u::ms(1000));
  EXPECT_LT(plan.required_write_bandwidth, u::gbps(24.4));
}

TEST(Planner, BandwidthStarvationCapsTheBudget) {
  auto inputs = base_inputs();
  inputs.target_write_bandwidth = u::gbps(6.1);  // a single SSD
  const auto plan = core::plan_offload(inputs);
  EXPECT_FALSE(plan.fully_offloadable);
  EXPECT_EQ(plan.offload_budget, plan.io_window_bytes);
  EXPECT_LT(plan.offload_budget, plan.offloadable_bytes_per_step);
}

TEST(Planner, BudgetScalesWithBandwidth) {
  auto one = base_inputs();
  one.target_write_bandwidth = u::gbps(3.0);
  auto two = base_inputs();
  two.target_write_bandwidth = u::gbps(6.0);
  EXPECT_NEAR(static_cast<double>(core::plan_offload(two).offload_budget),
              2.0 * static_cast<double>(core::plan_offload(one).offload_budget),
              1e6);
}

TEST(Planner, BudgetScalesWithMicroBatches) {
  auto one = base_inputs();
  auto three = base_inputs();
  three.micro_batches = 3;
  const auto p1 = core::plan_offload(one);
  const auto p3 = core::plan_offload(three);
  EXPECT_NEAR(static_cast<double>(p3.offloadable_bytes_per_step),
              3.0 * static_cast<double>(p1.offloadable_bytes_per_step), 1.0);
}

TEST(Planner, EstimateTracksActivationModel) {
  const auto plan = core::plan_offload(base_inputs());
  // The estimate feeds Table III; it must be strictly positive and below
  // the whole-model activation volume.
  EXPECT_GT(plan.offloadable_bytes_per_step, u::gb(5));
  EXPECT_LT(plan.offloadable_bytes_per_step,
            plan.activation_bytes_per_step);
}

TEST(Planner, CacheConfigCarriesBudget) {
  const auto plan = core::plan_offload(base_inputs());
  const auto cfg = core::make_cache_config(plan);
  EXPECT_EQ(cfg.offload_budget, plan.offload_budget);
}

TEST(Planner, SafetyFactorShrinksWindow) {
  auto cautious = base_inputs();
  cautious.safety_factor = 0.5;
  auto bold = base_inputs();
  bold.safety_factor = 1.0;
  EXPECT_LT(core::plan_offload(cautious).io_window_bytes,
            core::plan_offload(bold).io_window_bytes);
}
