// Serialized StepProgram + ProgramCache: the on-disk round trip must be
// exact (byte-stable re-serialization, bit-identical replay of a
// deserialized program in a *fresh* session that never traced), the cache
// key must separate every trace-shaping configuration, and corrupt /
// wrong-version / wrong-fingerprint cache files must degrade to misses
// (re-trace), never to wrong programs.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/cluster_session.hpp"
#include "ssdtrain/runtime/program_cache.hpp"
#include "ssdtrain/runtime/program_serdes.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/sched/schedule.hpp"
#include "ssdtrain/util/units.hpp"

namespace fs = std::filesystem;
namespace m = ssdtrain::modules;
namespace rt = ssdtrain::runtime;
namespace sched = ssdtrain::sched;

namespace {

constexpr int kSteps = 3;

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

rt::SessionConfig small_config(m::ModelConfig model, rt::Strategy strategy) {
  rt::SessionConfig config;
  config.model = std::move(model);
  config.parallel.tensor_parallel = 2;
  config.strategy = strategy;
  return config;
}

void expect_equal(const rt::StepStats& a, const rt::StepStats& b,
                  const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.step_time, b.step_time);
  EXPECT_EQ(a.drain_time, b.drain_time);
  EXPECT_EQ(a.optimizer_time, b.optimizer_time);
  EXPECT_EQ(a.activation_peak, b.activation_peak);
  EXPECT_EQ(a.total_peak, b.total_peak);
  EXPECT_EQ(a.weights_live, b.weights_live);
  EXPECT_EQ(a.algorithmic_flops, b.algorithmic_flops);
  EXPECT_EQ(a.executed_flops, b.executed_flops);
  EXPECT_EQ(a.model_throughput, b.model_throughput);
  EXPECT_EQ(a.compute_busy, b.compute_busy);
  EXPECT_EQ(a.compute_utilization, b.compute_utilization);
  EXPECT_EQ(a.offloaded_bytes, b.offloaded_bytes);
  EXPECT_EQ(a.loaded_bytes, b.loaded_bytes);
  EXPECT_EQ(a.ssd_host_written, b.ssd_host_written);
  EXPECT_EQ(a.ssd_write_amplification, b.ssd_write_amplification);
  EXPECT_EQ(a.required_write_bandwidth, b.required_write_bandwidth);
  EXPECT_EQ(a.cache.packs, b.cache.packs);
  EXPECT_EQ(a.cache.unpacks, b.cache.unpacks);
  EXPECT_EQ(a.cache.dedup_hits, b.cache.dedup_hits);
  EXPECT_EQ(a.cache.offload_started, b.cache.offload_started);
  EXPECT_EQ(a.cache.forwards, b.cache.forwards);
  EXPECT_EQ(a.cache.prefetch_loads, b.cache.prefetch_loads);
  EXPECT_EQ(a.cache.miss_loads, b.cache.miss_loads);
  EXPECT_EQ(a.cache.releases, b.cache.releases);
  EXPECT_EQ(a.cache.offloaded_bytes, b.cache.offloaded_bytes);
  EXPECT_EQ(a.cache.kept_bytes, b.cache.kept_bytes);
  EXPECT_EQ(a.offloader_totals.stores, b.offloader_totals.stores);
  EXPECT_EQ(a.offloader_totals.loads, b.offloader_totals.loads);
  EXPECT_EQ(a.offloader_totals.bytes_stored, b.offloader_totals.bytes_stored);
  EXPECT_EQ(a.offloader_totals.bytes_loaded, b.offloader_totals.bytes_loaded);
}

std::vector<m::ModelConfig> model_grid() {
  return {
      m::bert_config(2048, 2, 2),
      m::gpt_config(2048, 2, 2),
      m::t5_config(2048, 2, 2),
      m::gpt_moe_config(2048, 2, 2, /*num_experts=*/4, /*top_k=*/2),
      m::gpt_gqa_config(2048, 2, 2),
  };
}

std::vector<rt::Strategy> all_strategies() {
  return {rt::Strategy::keep_in_gpu, rt::Strategy::ssdtrain,
          rt::Strategy::ssdtrain_cpu, rt::Strategy::recompute_full,
          rt::Strategy::ssdtrain_recompute};
}

/// Records one step and hands back the serialized program + its key.
std::string record_serialized(const rt::SessionConfig& config,
                              rt::ProgramKey* key_out = nullptr) {
  rt::TrainingSession session(config);
  session.run_step();
  const rt::StepProgram* program = session.program();
  EXPECT_NE(program, nullptr);
  const rt::ProgramKey key = rt::session_program_key(config);
  if (key_out != nullptr) *key_out = key;
  return rt::serialize_program(*program, key.text);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// A fresh-process stand-in: session B shares only the cache *directory*
/// with the recording session — a brand-new ProgramCache instance reads the
/// file, and B replays from step 0 without ever tracing. Its per-step stats
/// and simulator event counts must match a plain record-then-replay session
/// bit for bit.
void expect_cold_cache_equivalent(const rt::SessionConfig& config,
                                  const std::string& what) {
  SCOPED_TRACE(what);
  TempDir dir("program_cache_" + what + "/");
  {
    rt::ProgramCache writer({dir.path});
    rt::SessionConfig a_cfg = config;
    a_cfg.program_cache = &writer;
    rt::TrainingSession a(a_cfg);
    a.run_step();
    EXPECT_FALSE(a.program_from_cache());
    EXPECT_EQ(writer.stats().stores, 1u);
    EXPECT_EQ(writer.stats().misses, 1u);
  }
  rt::ProgramCache reader({dir.path});
  rt::SessionConfig b_cfg = config;
  b_cfg.program_cache = &reader;
  rt::TrainingSession b(b_cfg);
  rt::TrainingSession plain(config);
  for (int step = 0; step < kSteps; ++step) {
    const auto expected = plain.run_step();
    const auto actual = b.run_step();
    expect_equal(expected, actual, what + " step " + std::to_string(step));
  }
  EXPECT_TRUE(b.program_from_cache());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  ASSERT_NE(b.program(), nullptr);
  EXPECT_TRUE(b.program()->replayable);
  EXPECT_EQ(plain.node().simulator().events_executed(),
            b.node().simulator().events_executed());
}

}  // namespace

TEST(ProgramSerdes, RoundTripIsByteStable) {
  for (rt::Strategy strategy :
       {rt::Strategy::ssdtrain, rt::Strategy::keep_in_gpu}) {
    const rt::SessionConfig config =
        small_config(m::t5_config(2048, 2, 2), strategy);
    rt::ProgramKey key;
    const std::string bytes = record_serialized(config, &key);
    rt::StepProgram decoded;
    std::string error;
    ASSERT_TRUE(rt::deserialize_program(bytes, key.text, decoded, &error))
        << error;
    // Serializing the decoded program reproduces the input byte for byte —
    // nothing is lost or reordered through the format.
    EXPECT_EQ(rt::serialize_program(decoded, key.text), bytes);
    EXPECT_TRUE(decoded.replayable);
    EXPECT_GT(decoded.ops.size(), 0u);
    EXPECT_GT(decoded.weights.size(), 0u);
  }
}

TEST(ProgramSerdes, RejectsMalformedBuffers) {
  const rt::SessionConfig config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  rt::ProgramKey key;
  const std::string bytes = record_serialized(config, &key);
  rt::StepProgram out;
  std::string error;

  // Truncations at every prefix must fail cleanly, never crash or succeed.
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{11},
                          bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(rt::deserialize_program(bytes.substr(0, len), key.text, out,
                                         &error))
        << "prefix length " << len;
  }
  // Trailing garbage is rejected (a concatenated/overwritten file).
  EXPECT_FALSE(rt::deserialize_program(bytes + "x", key.text, out, &error));

  // Wrong magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(rt::deserialize_program(bad, key.text, out, &error));

  // Wrong format version (byte 8 starts the u32 version field).
  bad = bytes;
  bad[8] = static_cast<char>(bad[8] ^ 0x1);
  EXPECT_FALSE(rt::deserialize_program(bad, key.text, out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Flipped payload byte: the checksum catches it.
  bad = bytes;
  bad[bytes.size() / 2] = static_cast<char>(bad[bytes.size() / 2] ^ 0x40);
  EXPECT_FALSE(rt::deserialize_program(bad, key.text, out, &error));

  // Right bytes, wrong fingerprint: a hash collision (or a renamed file)
  // must degrade to a miss, never a wrong hit.
  EXPECT_FALSE(
      rt::deserialize_program(bytes, key.text + "-other", out, &error));
  EXPECT_NE(error.find("key"), std::string::npos) << error;
}

TEST(ProgramKey, SeparatesTraceShapingConfigurations) {
  const rt::SessionConfig base =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  const std::string base_text = rt::session_program_key(base).text;
  // Same config -> same key (the cache-hit precondition).
  EXPECT_EQ(rt::session_program_key(base).text, base_text);

  auto expect_differs = [&](rt::SessionConfig changed, const char* what) {
    EXPECT_NE(rt::session_program_key(changed).text, base_text) << what;
  };
  {
    auto c = base;
    c.model.hidden = 4096;
    expect_differs(c, "hidden");
  }
  {
    auto c = base;
    c.strategy = rt::Strategy::ssdtrain_recompute;
    expect_differs(c, "strategy");
  }
  {
    auto c = base;
    c.micro_batches = 2;
    expect_differs(c, "micro_batches");
  }
  {
    auto c = base;
    c.parallel.tensor_parallel = 4;
    expect_differs(c, "tensor_parallel");
  }
  {
    auto c = base;
    c.prefetch_lookahead = 2;
    expect_differs(c, "prefetch_lookahead");
  }
  {
    auto c = base;
    c.budget_override = ssdtrain::util::gib(1);
    expect_differs(c, "budget_override");
  }
  {
    auto c = base;
    c.node.arrays[1].resize(2);
    expect_differs(c, "ssd array");
  }
  {
    auto c = base;
    c.faults.specs = ssdtrain::fault::parse_faults("io-error:rate=0.01");
    expect_differs(c, "fault specs");
  }
  {
    auto c = base;
    c.faults.specs = ssdtrain::fault::parse_faults("io-error:rate=0.01");
    c.faults.seed = 7;
    auto d = c;
    d.faults.seed = 8;
    EXPECT_NE(rt::session_program_key(c).text,
              rt::session_program_key(d).text)
        << "fault seed";
  }
  // use_replay is deliberately NOT part of the key (a cache is only
  // consulted with replay on), and neither is the worker count.
  {
    auto c = base;
    c.use_replay = false;
    EXPECT_EQ(rt::session_program_key(c).text, base_text);
  }
}

TEST(ProgramCache, ColdProcessReplayIsBitIdenticalAcrossModelGrid) {
  int i = 0;
  for (const auto& model : model_grid()) {
    for (rt::Strategy strategy : all_strategies()) {
      expect_cold_cache_equivalent(
          small_config(model, strategy),
          model.name + "_" + std::string(to_string(strategy)) + "_" +
              std::to_string(i++));
    }
  }
}

TEST(ProgramCache, GradAccumAndKnobVariantsRoundTrip) {
  {
    auto config =
        small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
    config.micro_batches = 3;
    expect_cold_cache_equivalent(config, "grad_accum");
  }
  {
    auto config =
        small_config(m::gpt_config(2048, 2, 2), rt::Strategy::ssdtrain);
    config.forwarding = false;
    config.prefetch_lookahead = 2;
    expect_cold_cache_equivalent(config, "knobs");
  }
}

TEST(ProgramCache, InProcessTierHitsWithoutTouchingDisk) {
  rt::ProgramCache cache;  // no directory: memory tier only
  const auto config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::keep_in_gpu);

  rt::SessionConfig a_cfg = config;
  a_cfg.program_cache = &cache;
  rt::TrainingSession a(a_cfg);
  a.run_step();
  EXPECT_FALSE(a.program_from_cache());

  rt::SessionConfig b_cfg = config;
  b_cfg.program_cache = &cache;
  rt::TrainingSession b(b_cfg);
  rt::TrainingSession plain(config);
  for (int step = 0; step < kSteps; ++step) {
    expect_equal(plain.run_step(), b.run_step(),
                 "memory tier step " + std::to_string(step));
  }
  EXPECT_TRUE(b.program_from_cache());
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  EXPECT_FALSE(cache.has_directory());
}

TEST(ProgramCache, CorruptAndMismatchedFilesAreRejectedAndReTraced) {
  TempDir dir("program_cache_reject/");
  const auto config =
      small_config(m::bert_config(2048, 2, 2), rt::Strategy::ssdtrain);
  const rt::ProgramKey key = rt::session_program_key(config);
  {
    rt::ProgramCache writer({dir.path});
    rt::SessionConfig cfg = config;
    cfg.program_cache = &writer;
    rt::TrainingSession session(cfg);
    session.run_step();
    ASSERT_TRUE(fs::exists(writer.entry_path(key)));
  }

  const std::string path = rt::ProgramCache({dir.path}).entry_path(key);
  const std::string good = read_file(path);

  // Corrupt byte -> checksum reject -> miss; the session re-traces and
  // repairs the entry.
  {
    std::string bad = good;
    bad[good.size() / 2] = static_cast<char>(bad[good.size() / 2] ^ 0x7);
    write_file(path, bad);
    rt::ProgramCache reader({dir.path});
    EXPECT_EQ(reader.lookup(key), nullptr);
    EXPECT_EQ(reader.stats().disk_rejects, 1u);
    EXPECT_EQ(reader.stats().misses, 1u);

    rt::SessionConfig cfg = config;
    cfg.program_cache = &reader;
    rt::TrainingSession session(cfg);
    session.run_step();
    EXPECT_FALSE(session.program_from_cache());
    EXPECT_EQ(read_file(path), good);  // re-trace re-published the entry
  }

  // Wrong format version -> reject.
  {
    std::string bad = good;
    bad[8] = static_cast<char>(bad[8] ^ 0x1);
    write_file(path, bad);
    rt::ProgramCache reader({dir.path});
    EXPECT_EQ(reader.lookup(key), nullptr);
    EXPECT_EQ(reader.stats().disk_rejects, 1u);
  }

  // Truncated file -> reject.
  {
    write_file(path, good.substr(0, good.size() / 3));
    rt::ProgramCache reader({dir.path});
    EXPECT_EQ(reader.lookup(key), nullptr);
    EXPECT_EQ(reader.stats().disk_rejects, 1u);
  }

  // A valid file renamed onto another key's path (or a hash collision):
  // the stored key text does not match the lookup -> reject, not wrong hit.
  {
    write_file(path, good);
    auto other = config;
    other.model.hidden = 4096;
    const rt::ProgramKey other_key = rt::session_program_key(other);
    rt::ProgramCache cache({dir.path});
    fs::copy_file(path, cache.entry_path(other_key),
                  fs::copy_options::overwrite_existing);
    EXPECT_EQ(cache.lookup(other_key), nullptr);
    EXPECT_EQ(cache.stats().disk_rejects, 1u);
    // The original key still hits.
    EXPECT_NE(cache.lookup(key), nullptr);
  }
}

TEST(ProgramCacheCluster, StageSlicesReplayBitIdenticallyFromDisk) {
  rt::ClusterConfig config;
  config.model = m::bert_config(2048, 4, 2);
  config.parallel.pipeline_parallel = 2;
  config.strategy = rt::Strategy::ssdtrain;
  config.micro_batches = 2;
  config.schedule = sched::PipelineKind::one_f_one_b;

  TempDir dir("program_cache_cluster/");
  {
    rt::ProgramCache writer({dir.path});
    rt::ClusterConfig a_cfg = config;
    a_cfg.program_cache = &writer;
    rt::ClusterSession a(a_cfg);
    a.run_step();
    // One program per virtual stage, each under its own stage key.
    EXPECT_EQ(writer.stats().stores, 2u);
  }

  rt::ProgramCache reader({dir.path});
  rt::ClusterConfig b_cfg = config;
  b_cfg.program_cache = &reader;
  rt::ClusterSession b(b_cfg);
  rt::ClusterSession plain(config);
  for (int step = 0; step < kSteps; ++step) {
    const auto expected = plain.run_step();
    const auto actual = b.run_step();
    expect_equal(expected.combined, actual.combined,
                 "combined step " + std::to_string(step));
    ASSERT_EQ(expected.per_stage.size(), actual.per_stage.size());
    for (std::size_t vs = 0; vs < expected.per_stage.size(); ++vs) {
      expect_equal(expected.per_stage[vs].stats, actual.per_stage[vs].stats,
                   "stage " + std::to_string(vs) + " step " +
                       std::to_string(step));
    }
    EXPECT_EQ(expected.pipeline_time, actual.pipeline_time);
    EXPECT_EQ(expected.p2p_bytes, actual.p2p_bytes);
    EXPECT_EQ(expected.dp_bytes, actual.dp_bytes);
  }
  EXPECT_EQ(reader.stats().disk_hits, 2u);
  for (int vs = 0; vs < b.virtual_stage_count(); ++vs) {
    ASSERT_NE(b.program(vs), nullptr);
    EXPECT_TRUE(b.program(vs)->replayable);
  }
  EXPECT_EQ(plain.node().simulator().events_executed(),
            b.node().simulator().events_executed());
}

TEST(ProgramCacheCluster, InterleavedVirtualStagesSkipTheRecordStagger) {
  rt::ClusterConfig config;
  config.model = m::bert_config(2048, 4, 2);
  config.parallel.pipeline_parallel = 2;
  config.virtual_stages = 2;
  config.strategy = rt::Strategy::keep_in_gpu;
  config.micro_batches = 4;
  config.schedule = sched::PipelineKind::interleaved_1f1b;

  TempDir dir("program_cache_interleaved/");
  {
    rt::ProgramCache writer({dir.path});
    rt::ClusterConfig a_cfg = config;
    a_cfg.program_cache = &writer;
    rt::ClusterSession a(a_cfg);
    // Chunk c records on step c: two steps to populate all 4 stage keys.
    a.run_step();
    a.run_step();
    EXPECT_EQ(writer.stats().stores, 4u);
  }

  rt::ProgramCache reader({dir.path});
  rt::ClusterConfig b_cfg = config;
  b_cfg.program_cache = &reader;
  rt::ClusterSession b(b_cfg);
  rt::ClusterSession plain(config);
  for (int step = 0; step < kSteps; ++step) {
    const auto expected = plain.run_step();
    const auto actual = b.run_step();
    expect_equal(expected.combined, actual.combined,
                 "interleaved step " + std::to_string(step));
  }
  // Every chunk replayed from step 0 — no record stagger in session B.
  EXPECT_EQ(reader.stats().disk_hits, 4u);
  EXPECT_EQ(plain.node().simulator().events_executed(),
            b.node().simulator().events_executed());
}
