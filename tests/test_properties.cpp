// Property-based sweeps: the paper's headline invariants must hold across
// the whole configuration space, not just the evaluation points. Each
// parameterized case runs full keep-baseline and SSDTrain sessions and
// checks overlap, memory reduction, estimate accuracy, and SSD hygiene.

#include <gtest/gtest.h>

#include <string>

#include "ssdtrain/analysis/activation_model.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/util/label.hpp"
#include "ssdtrain/util/units.hpp"

namespace m = ssdtrain::modules;
namespace rt = ssdtrain::runtime;
namespace u = ssdtrain::util;

namespace {

using ConfigFactory = m::ModelConfig (*)(std::int64_t, int, std::int64_t);

struct SweepCase {
  ConfigFactory make;
  std::int64_t hidden;
  int layers;
  std::int64_t batch;

  [[nodiscard]] std::string name() const {
    std::string label = make(hidden, layers, batch).name;
    for (char& c : label) {
      if (c == '-') c = '_';  // gtest parameter names are [A-Za-z0-9_]
    }
    return label + u::label("_H", hidden) + u::label("_L", layers) +
           u::label("_B", batch);
  }
};

m::ModelConfig model_for(const SweepCase& c) {
  return c.make(c.hidden, c.layers, c.batch);
}

class StrategySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  rt::StepStats run(rt::Strategy strategy) {
    rt::SessionConfig config;
    config.model = model_for(GetParam());
    config.parallel.tensor_parallel = 2;
    config.strategy = strategy;
    session_ = std::make_unique<rt::TrainingSession>(std::move(config));
    session_->run_step();
    return session_->run_step();
  }

  std::unique_ptr<rt::TrainingSession> session_;
};

}  // namespace

TEST_P(StrategySweep, OverlapAndMemoryInvariantsHold) {
  const auto keep = run(rt::Strategy::keep_in_gpu);
  const auto ssd = run(rt::Strategy::ssdtrain);

  // Invariant 1 (Fig. 6a): offloading never costs more than 2% step time.
  EXPECT_LE(ssd.step_time, keep.step_time * 1.02) << GetParam().name();

  // Invariant 2 (Fig. 6b): the activation peak shrinks materially.
  const double reduction =
      1.0 - static_cast<double>(ssd.activation_peak) /
                static_cast<double>(keep.activation_peak);
  EXPECT_GT(reduction, 0.20) << GetParam().name();
  EXPECT_LT(reduction, 0.75) << GetParam().name();

  // Invariant 3 (Table III): measured offload within 15% of the estimate.
  ASSERT_TRUE(session_->plan().has_value());
  const double estimate =
      static_cast<double>(session_->plan()->offloadable_bytes_per_step);
  EXPECT_NEAR(static_cast<double>(ssd.offloaded_bytes), estimate,
              estimate * 0.15)
      << GetParam().name();

  // Invariant 4 (§II-C): the write pattern stays endurance-friendly and
  // leaves no space behind.
  EXPECT_LT(ssd.ssd_write_amplification, 1.05) << GetParam().name();
  EXPECT_EQ(session_->node()
                .array(session_->config().gpu_index)
                .live_bytes(),
            0)
      << GetParam().name();

  // Invariant 5: trailing I/O drains within the overlap window.
  EXPECT_LT(ssd.drain_time, keep.step_time * 0.05) << GetParam().name();
}

namespace {

/// Wraps the MoE/GQA factories into the three-argument factory shape the
/// sweep uses, so the new workloads ride the same invariants.
m::ModelConfig moe_case_config(std::int64_t hidden, int layers,
                               std::int64_t batch) {
  return m::gpt_moe_config(hidden, layers, batch, /*num_experts=*/8,
                           /*top_k=*/2);
}

m::ModelConfig gqa_case_config(std::int64_t hidden, int layers,
                               std::int64_t batch) {
  return m::gpt_gqa_config(hidden, layers, batch);
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    ArchitecturesAndShapes, StrategySweep,
    ::testing::Values(SweepCase{&m::bert_config, 4096, 4, 8},
                      SweepCase{&m::bert_config, 8192, 2, 16},
                      SweepCase{&m::bert_config, 12288, 3, 4},
                      SweepCase{&m::gpt_config, 4096, 3, 16},
                      SweepCase{&m::gpt_config, 8192, 4, 8},
                      SweepCase{&m::t5_config, 4096, 4, 8},
                      SweepCase{&m::t5_config, 8192, 3, 16},
                      SweepCase{&moe_case_config, 4096, 3, 8},
                      SweepCase{&gqa_case_config, 8192, 3, 8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name();
    });

namespace {

class RecomputeSweep : public ::testing::TestWithParam<SweepCase> {};

}  // namespace

TEST_P(RecomputeSweep, RecomputeInvariantsHold) {
  rt::SessionConfig keep_cfg, rec_cfg;
  keep_cfg.model = rec_cfg.model = model_for(GetParam());
  keep_cfg.parallel.tensor_parallel = rec_cfg.parallel.tensor_parallel = 2;
  keep_cfg.strategy = rt::Strategy::keep_in_gpu;
  rec_cfg.strategy = rt::Strategy::recompute_full;

  rt::TrainingSession keep_session(std::move(keep_cfg));
  keep_session.run_step();
  const auto keep = keep_session.run_step();
  rt::TrainingSession rec_session(std::move(rec_cfg));
  rec_session.run_step();
  const auto rec = rec_session.run_step();

  // Algorithmic work identical; executed work strictly larger; the
  // recomputation penalty stays within (1, 1.55] of a forward pass.
  EXPECT_NEAR(rec.algorithmic_flops, keep.algorithmic_flops,
              keep.algorithmic_flops * 0.01)
      << GetParam().name();
  const double overhead = rec.executed_flops / rec.algorithmic_flops;
  EXPECT_GT(overhead, 1.05) << GetParam().name();
  EXPECT_LT(overhead, 1.55) << GetParam().name();
  // Memory: recompute always below keep.
  EXPECT_LT(rec.activation_peak, keep.activation_peak) << GetParam().name();
  // Throughput: recompute always below keep.
  EXPECT_LT(rec.model_throughput, keep.model_throughput)
      << GetParam().name();
}

INSTANTIATE_TEST_SUITE_P(
    ArchitecturesAndShapes, RecomputeSweep,
    ::testing::Values(SweepCase{&m::bert_config, 4096, 3, 8},
                      SweepCase{&m::gpt_config, 8192, 2, 8},
                      SweepCase{&m::t5_config, 4096, 4, 8},
                      SweepCase{&moe_case_config, 4096, 3, 8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name();
    });

namespace {

struct FormulaCase {
  std::int64_t hidden;
  std::int64_t batch;
  int tp;
  bool flash;
  bool sp;
};

class ActivationFormulaSweep
    : public ::testing::TestWithParam<FormulaCase> {};

}  // namespace

TEST_P(ActivationFormulaSweep, FormulaInternalConsistency) {
  const auto& p = GetParam();
  auto cfg = m::bert_config(p.hidden, 3, p.batch);
  cfg.flash_attention = p.flash;
  ssdtrain::parallel::ParallelConfig parallel;
  parallel.tensor_parallel = p.tp;
  parallel.sequence_parallel = p.sp;

  namespace a = ssdtrain::analysis;
  const double sbh = static_cast<double>(cfg.seq) * p.batch * p.hidden;
  const auto bytes = a::layer_activation_bytes(cfg, parallel);
  const double t = p.tp;

  double expected = p.sp ? 34.0 * sbh / t : sbh * (10.0 + 24.0 / t);
  if (!p.flash) {
    expected += 5.0 * static_cast<double>(cfg.heads) * cfg.seq * cfg.seq *
                p.batch / t;
  }
  EXPECT_EQ(bytes, static_cast<u::Bytes>(expected));
  // Offloadable is positive and strictly below the model total.
  EXPECT_GT(a::offloadable_activation_bytes(cfg, parallel), 0);
  EXPECT_LT(a::offloadable_activation_bytes(cfg, parallel),
            a::model_activation_bytes(cfg, parallel));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ActivationFormulaSweep,
    ::testing::Values(FormulaCase{4096, 4, 1, true, false},
                      FormulaCase{8192, 8, 2, true, false},
                      FormulaCase{8192, 8, 2, false, false},
                      FormulaCase{12288, 16, 4, true, false},
                      FormulaCase{12288, 16, 8, true, true},
                      FormulaCase{16384, 2, 8, false, false},
                      FormulaCase{16384, 32, 8, true, true}));
