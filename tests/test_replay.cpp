// Step-graph record/replay equivalence: a session that records its first
// step and replays the compact StepProgram afterwards must be *bit
// identical* to a session tracing the module tree every step — same
// StepStats field for field (times, peaks, flops, cache and offloader
// counters), same number of simulator events — across the model grid
// (BERT/GPT/T5/MoE/GQA) under all five strategies, gradient accumulation,
// and the forwarding/budget ablations.

#include <gtest/gtest.h>

#include <vector>

#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/util/units.hpp"

namespace rt = ssdtrain::runtime;
namespace m = ssdtrain::modules;
namespace u = ssdtrain::util;

namespace {

constexpr int kSteps = 3;  // record + two replays

rt::SessionConfig small_config(m::ModelConfig model, rt::Strategy strategy) {
  rt::SessionConfig config;
  config.model = std::move(model);
  config.parallel.tensor_parallel = 2;
  config.strategy = strategy;
  return config;
}

void expect_equal(const rt::StepStats& a, const rt::StepStats& b,
                  const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.step_time, b.step_time);
  EXPECT_EQ(a.drain_time, b.drain_time);
  EXPECT_EQ(a.optimizer_time, b.optimizer_time);
  EXPECT_EQ(a.activation_peak, b.activation_peak);
  EXPECT_EQ(a.total_peak, b.total_peak);
  EXPECT_EQ(a.weights_live, b.weights_live);
  EXPECT_EQ(a.algorithmic_flops, b.algorithmic_flops);
  EXPECT_EQ(a.executed_flops, b.executed_flops);
  EXPECT_EQ(a.model_throughput, b.model_throughput);
  EXPECT_EQ(a.compute_busy, b.compute_busy);
  EXPECT_EQ(a.compute_utilization, b.compute_utilization);
  EXPECT_EQ(a.offloaded_bytes, b.offloaded_bytes);
  EXPECT_EQ(a.loaded_bytes, b.loaded_bytes);
  EXPECT_EQ(a.ssd_host_written, b.ssd_host_written);
  EXPECT_EQ(a.ssd_write_amplification, b.ssd_write_amplification);
  EXPECT_EQ(a.required_write_bandwidth, b.required_write_bandwidth);

  EXPECT_EQ(a.cache.packs, b.cache.packs);
  EXPECT_EQ(a.cache.unpacks, b.cache.unpacks);
  EXPECT_EQ(a.cache.passthrough_weight, b.cache.passthrough_weight);
  EXPECT_EQ(a.cache.passthrough_cpu, b.cache.passthrough_cpu);
  EXPECT_EQ(a.cache.passthrough_small, b.cache.passthrough_small);
  EXPECT_EQ(a.cache.dedup_hits, b.cache.dedup_hits);
  EXPECT_EQ(a.cache.offload_started, b.cache.offload_started);
  EXPECT_EQ(a.cache.kept_budget, b.cache.kept_budget);
  EXPECT_EQ(a.cache.kept_backward, b.cache.kept_backward);
  EXPECT_EQ(a.cache.kept_scope, b.cache.kept_scope);
  EXPECT_EQ(a.cache.kept_offloader_refused, b.cache.kept_offloader_refused);
  EXPECT_EQ(a.cache.forwards, b.cache.forwards);
  EXPECT_EQ(a.cache.prefetch_loads, b.cache.prefetch_loads);
  EXPECT_EQ(a.cache.miss_loads, b.cache.miss_loads);
  EXPECT_EQ(a.cache.wasted_stores, b.cache.wasted_stores);
  EXPECT_EQ(a.cache.releases, b.cache.releases);
  EXPECT_EQ(a.cache.offloaded_bytes, b.cache.offloaded_bytes);
  EXPECT_EQ(a.cache.kept_bytes, b.cache.kept_bytes);

  EXPECT_EQ(a.offloader_totals.stores, b.offloader_totals.stores);
  EXPECT_EQ(a.offloader_totals.loads, b.offloader_totals.loads);
  EXPECT_EQ(a.offloader_totals.bytes_stored, b.offloader_totals.bytes_stored);
  EXPECT_EQ(a.offloader_totals.bytes_loaded, b.offloader_totals.bytes_loaded);
  EXPECT_EQ(a.offloader_totals.releases, b.offloader_totals.releases);
  EXPECT_EQ(a.offloader_totals.failed_stores,
            b.offloader_totals.failed_stores);
}

/// Runs the same config through a trace-every-step session and a
/// record-then-replay session; every step's stats (and the simulators'
/// total event counts) must match exactly.
void expect_replay_equivalent(rt::SessionConfig config,
                              const std::string& what) {
  rt::SessionConfig traced_cfg = config;
  traced_cfg.use_replay = false;
  rt::SessionConfig replayed_cfg = std::move(config);
  replayed_cfg.use_replay = true;

  rt::TrainingSession traced(std::move(traced_cfg));
  rt::TrainingSession replayed(std::move(replayed_cfg));
  for (int step = 0; step < kSteps; ++step) {
    const auto a = traced.run_step();
    const auto b = replayed.run_step();
    expect_equal(a, b, what + " step " + std::to_string(step));
  }
  // The replay pipeline must actually have engaged (a silently discarded
  // program would make this test vacuous).
  ASSERT_NE(replayed.program(), nullptr) << what;
  EXPECT_TRUE(replayed.program()->replayable) << what;
  EXPECT_GT(replayed.program()->ops.size(), 0u) << what;
  // Identical command streams drive identical event streams.
  EXPECT_EQ(traced.node().simulator().events_executed(),
            replayed.node().simulator().events_executed())
      << what;
}

std::vector<m::ModelConfig> model_grid() {
  return {
      m::bert_config(2048, 2, 2),
      m::gpt_config(2048, 2, 2),
      m::t5_config(2048, 2, 2),
      m::gpt_moe_config(2048, 2, 2, /*num_experts=*/4, /*top_k=*/2),
      m::gpt_gqa_config(2048, 2, 2),
  };
}

std::vector<rt::Strategy> all_strategies() {
  return {rt::Strategy::keep_in_gpu, rt::Strategy::ssdtrain,
          rt::Strategy::ssdtrain_cpu, rt::Strategy::recompute_full,
          rt::Strategy::ssdtrain_recompute};
}

}  // namespace

TEST(ReplayEquivalence, ModelGridUnderEveryStrategy) {
  for (const auto& model : model_grid()) {
    for (rt::Strategy strategy : all_strategies()) {
      expect_replay_equivalent(
          small_config(model, strategy),
          model.name + " / " + std::string(to_string(strategy)));
    }
  }
}

TEST(ReplayEquivalence, PaperScaleSsdOffload) {
  // One paper-sized point (Table III's smallest config) so the property
  // holds where the real bandwidth pressure and prefetch traffic live.
  auto config = small_config(m::bert_config(8192, 2, 8),
                             rt::Strategy::ssdtrain);
  expect_replay_equivalent(std::move(config), "BERT H8192 ssdtrain");
}

TEST(ReplayEquivalence, GradientAccumulationSchedules) {
  for (int micro_batches : {2, 3}) {
    auto config = small_config(m::gpt_config(2048, 2, 2),
                               rt::Strategy::ssdtrain);
    config.micro_batches = micro_batches;
    expect_replay_equivalent(
        std::move(config),
        "GPT grad-accum mb=" + std::to_string(micro_batches));
  }
}

TEST(ReplayEquivalence, ForwardingAblation) {
  auto config = small_config(m::bert_config(2048, 2, 2),
                             rt::Strategy::ssdtrain);
  config.forwarding = false;
  expect_replay_equivalent(std::move(config), "forwarding off");
}

TEST(ReplayEquivalence, BudgetOverride) {
  auto config = small_config(m::bert_config(8192, 2, 8),
                             rt::Strategy::ssdtrain);
  config.budget_override = u::gib(1);
  expect_replay_equivalent(std::move(config), "budget 1 GiB");
}

TEST(ReplayEquivalence, NoGdsBouncePath) {
  auto config = small_config(m::bert_config(2048, 2, 2),
                             rt::Strategy::ssdtrain);
  config.use_gds = false;
  expect_replay_equivalent(std::move(config), "bounce path");
}

TEST(Replay, ProgramRejectsChangedSchedule) {
  auto config = small_config(m::bert_config(2048, 2, 2),
                             rt::Strategy::keep_in_gpu);
  rt::TrainingSession session(std::move(config));
  session.run_steps(2);
  ASSERT_NE(session.program(), nullptr);
  const auto other_schedule = ssdtrain::sched::grad_accum_schedule(2);
  EXPECT_THROW(session.executor().replay(*session.program(), other_schedule),
               ssdtrain::util::ContractViolation);
}

TEST(Replay, SessionWithReplayDisabledNeverRecords) {
  auto config = small_config(m::bert_config(2048, 2, 2),
                             rt::Strategy::ssdtrain);
  config.use_replay = false;
  rt::TrainingSession session(std::move(config));
  session.run_steps(2);
  EXPECT_EQ(session.program(), nullptr);
}
