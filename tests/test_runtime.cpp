// Integration tests: full training steps through the executor on the
// simulated Table II machine, asserting the paper's claims — full I/O
// overlap (step time parity with the keep-everything baseline), substantial
// activation-peak reduction, recompute's throughput/memory trade-off, SSD
// hygiene (extents trimmed, WAF ~1), and ablation behaviour.

#include <gtest/gtest.h>

#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/util/units.hpp"

namespace rt = ssdtrain::runtime;
namespace m = ssdtrain::modules;
namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

namespace {

rt::SessionConfig base_config(rt::Strategy strategy,
                              std::int64_t hidden = 8192, int layers = 3,
                              std::int64_t batch = 8) {
  rt::SessionConfig config;
  config.model = m::bert_config(hidden, layers, batch);
  config.parallel.tensor_parallel = 2;
  config.strategy = strategy;
  return config;
}

rt::StepStats run_one(rt::SessionConfig config) {
  rt::TrainingSession session(std::move(config));
  session.run_step();  // warm-up: builds weights, stamps ids
  return session.run_step();
}

}  // namespace

TEST(Integration, SsdTrainMatchesBaselineStepTime) {
  const auto keep = run_one(base_config(rt::Strategy::keep_in_gpu));
  const auto ssd = run_one(base_config(rt::Strategy::ssdtrain));
  // "SSDTrain perfectly overlaps the I/O with the computation and incurs
  // negligible overhead."
  EXPECT_NEAR(ssd.step_time, keep.step_time, keep.step_time * 0.02);
  EXPECT_NEAR(ssd.model_throughput, keep.model_throughput,
              keep.model_throughput * 0.02);
}

TEST(Integration, SsdTrainReducesActivationPeak) {
  const auto keep = run_one(base_config(rt::Strategy::keep_in_gpu));
  const auto ssd = run_one(base_config(rt::Strategy::ssdtrain));
  const double reduction =
      1.0 - static_cast<double>(ssd.activation_peak) /
                static_cast<double>(keep.activation_peak);
  // Paper band for the Fig. 6 configurations: 28%-47%.
  EXPECT_GT(reduction, 0.25);
  EXPECT_LT(reduction, 0.60);
}

TEST(Integration, OffloadedAmountNearAnalyticEstimate) {
  // Table III: measured offloaded bytes track the closed-form estimate.
  auto config = base_config(rt::Strategy::ssdtrain);
  rt::TrainingSession session(config);
  session.run_step();
  const auto stats = session.run_step();
  ASSERT_TRUE(session.plan().has_value());
  const double measured = static_cast<double>(stats.offloaded_bytes);
  const double estimate =
      static_cast<double>(session.plan()->offloadable_bytes_per_step);
  EXPECT_NEAR(measured, estimate, estimate * 0.10);
}

TEST(Integration, TrailingIoDrainsQuickly) {
  const auto ssd = run_one(base_config(rt::Strategy::ssdtrain));
  // Full overlap means no meaningful I/O tail after the optimizer.
  EXPECT_LT(ssd.drain_time, ssd.step_time * 0.02);
}

TEST(Integration, RecomputeTradesThroughputForMemory) {
  const auto keep = run_one(base_config(rt::Strategy::keep_in_gpu));
  const auto rec = run_one(base_config(rt::Strategy::recompute_full));
  // Same algorithmic work, more executed work.
  EXPECT_NEAR(rec.algorithmic_flops, keep.algorithmic_flops,
              keep.algorithmic_flops * 0.01);
  EXPECT_GT(rec.executed_flops, rec.algorithmic_flops * 1.2);
  // Lower model throughput (the extra forward), smaller peak.
  EXPECT_LT(rec.model_throughput, keep.model_throughput * 0.85);
  EXPECT_LT(rec.activation_peak, keep.activation_peak);
}

TEST(Integration, SsdTrainBeatsRecomputeOnBothAxes) {
  // The ROK-curve headline: offloading achieves keep-level throughput at a
  // memory peak at or below recomputation's.
  const auto ssd = run_one(base_config(rt::Strategy::ssdtrain));
  const auto rec = run_one(base_config(rt::Strategy::recompute_full));
  EXPECT_GT(ssd.model_throughput, rec.model_throughput * 1.1);
}

TEST(Integration, HybridCheckpointOffloadIsTheMemoryMinimum) {
  // SSDTrain composed with activation checkpointing (Alg. 1's in-backward
  // branch): checkpoints go to SSD, rematerialised tensors stay in GPU.
  const auto rec = run_one(base_config(rt::Strategy::recompute_full));
  const auto hybrid = run_one(base_config(rt::Strategy::ssdtrain_recompute));
  // Same work profile as pure recomputation...
  EXPECT_NEAR(hybrid.algorithmic_flops, rec.algorithmic_flops,
              rec.algorithmic_flops * 0.01);
  EXPECT_NEAR(hybrid.step_time, rec.step_time, rec.step_time * 0.03);
  // ...but the checkpoints leave GPU memory: lowest peak of all
  // strategies.
  EXPECT_LT(hybrid.activation_peak, rec.activation_peak);
  EXPECT_GT(hybrid.offloaded_bytes, 0);
  // Rematerialised packs hit the in-backward keep branch.
  EXPECT_GT(hybrid.cache.kept_backward, 0u);
}

TEST(Integration, CpuOffloaderWorksOverPcie) {
  const auto keep = run_one(base_config(rt::Strategy::keep_in_gpu));
  const auto cpu = run_one(base_config(rt::Strategy::ssdtrain_cpu));
  EXPECT_NEAR(cpu.step_time, keep.step_time, keep.step_time * 0.05);
  EXPECT_GT(cpu.offloaded_bytes, 0);
  EXPECT_LT(cpu.activation_peak, keep.activation_peak);
}

TEST(Integration, SsdExtentsTrimmedAfterStep) {
  auto config = base_config(rt::Strategy::ssdtrain);
  rt::TrainingSession session(config);
  session.run_steps(3);
  // Every offloaded tensor was released after its backward use: no space
  // leaks on the array.
  EXPECT_EQ(session.node().array(config.gpu_index).live_bytes(), 0);
}

TEST(Integration, SequentialOffloadKeepsWafNearOne) {
  // §II-C: the offloading write pattern is endurance-friendly. After
  // several steps of writing and trimming multi-GB extents, the measured
  // FTL write amplification stays ~1.
  auto config = base_config(rt::Strategy::ssdtrain);
  rt::TrainingSession session(config);
  const auto steps = session.run_steps(4);
  EXPECT_LT(steps.back().ssd_write_amplification, 1.05);
  EXPECT_GT(steps.back().ssd_host_written, u::gb(1));
}

TEST(Integration, ForwardingAblationDoesNotBreakCorrectness) {
  auto with = base_config(rt::Strategy::ssdtrain);
  auto without = base_config(rt::Strategy::ssdtrain);
  without.forwarding = false;
  const auto s_with = run_one(std::move(with));
  const auto s_without = run_one(std::move(without));
  // Disabling forwarding can only serialise (equal or slower).
  EXPECT_GE(s_without.step_time, s_with.step_time * 0.999);
  EXPECT_GT(s_with.cache.forwards, 0u);
  EXPECT_EQ(s_without.cache.forwards, 0u);
}

TEST(Integration, BudgetOverrideLimitsOffloading) {
  auto limited = base_config(rt::Strategy::ssdtrain);
  limited.budget_override = u::gib(2);
  const auto s_limited = run_one(std::move(limited));
  const auto s_full = run_one(base_config(rt::Strategy::ssdtrain));
  EXPECT_LT(s_limited.offloaded_bytes, s_full.offloaded_bytes);
  EXPECT_LE(s_limited.offloaded_bytes, u::gib(2) + u::mib(64));
  EXPECT_GT(s_limited.activation_peak, s_full.activation_peak);
  EXPECT_GT(s_limited.cache.kept_budget, 0u);
}

TEST(Integration, GptAndT5AlsoBenefit) {
  for (const auto& model :
       {m::gpt_config(8192, 3, 8), m::t5_config(8192, 3, 8)}) {
    auto keep_cfg = base_config(rt::Strategy::keep_in_gpu);
    auto ssd_cfg = base_config(rt::Strategy::ssdtrain);
    keep_cfg.model = ssd_cfg.model = model;
    const auto keep = run_one(std::move(keep_cfg));
    const auto ssd = run_one(std::move(ssd_cfg));
    EXPECT_NEAR(ssd.step_time, keep.step_time, keep.step_time * 0.03);
    EXPECT_LT(ssd.activation_peak,
              static_cast<double>(keep.activation_peak) * 0.8);
  }
}

TEST(Integration, MoeAndGqaWorkloadsRunUnderEveryStrategy) {
  // The acceptance gate for the WorkloadSpec refactor: the new workloads
  // run end-to-end through TrainingSession under all five strategies.
  for (const auto& model :
       {m::gpt_moe_config(4096, 2, 4, /*num_experts=*/8, /*top_k=*/2),
        m::gpt_gqa_config(4096, 2, 4)}) {
    for (rt::Strategy strategy :
         {rt::Strategy::keep_in_gpu, rt::Strategy::ssdtrain,
          rt::Strategy::ssdtrain_cpu, rt::Strategy::recompute_full,
          rt::Strategy::ssdtrain_recompute}) {
      auto cfg = base_config(strategy);
      cfg.model = model;
      const auto stats = run_one(std::move(cfg));
      EXPECT_GT(stats.step_time, 0.0)
          << model.name << " / " << to_string(strategy);
      EXPECT_GT(stats.activation_peak, 0) << model.name;
    }
  }
}

TEST(Integration, MoeOffloadsMoreThanDenseGpt) {
  // Expert activations stress the offload path asymmetrically: with
  // top_k=2 the routed FFN stream roughly doubles, so the offloaded
  // volume must exceed the dense GPT baseline at the same shape.
  auto dense_cfg = base_config(rt::Strategy::ssdtrain);
  dense_cfg.model = m::gpt_config(8192, 3, 8);
  auto moe_cfg = base_config(rt::Strategy::ssdtrain);
  moe_cfg.model = m::gpt_moe_config(8192, 3, 8, 8, 2);
  const auto dense = run_one(std::move(dense_cfg));
  const auto moe = run_one(std::move(moe_cfg));
  EXPECT_GT(moe.offloaded_bytes, dense.offloaded_bytes);
}

TEST(Integration, GqaOffloadsLessThanDenseGpt) {
  // GQA shrinks the saved QKV planes, so the offloaded volume drops below
  // the MHA baseline at the same shape.
  auto dense_cfg = base_config(rt::Strategy::ssdtrain);
  dense_cfg.model = m::gpt_config(8192, 3, 8);
  auto gqa_cfg = base_config(rt::Strategy::ssdtrain);
  gqa_cfg.model = m::gpt_gqa_config(8192, 3, 8);
  const auto dense = run_one(std::move(dense_cfg));
  const auto gqa = run_one(std::move(gqa_cfg));
  EXPECT_LT(gqa.offloaded_bytes, dense.offloaded_bytes);
}

TEST(Integration, GradAccumulationRunsMultipleMicroBatches) {
  auto config = base_config(rt::Strategy::ssdtrain, 8192, 2, 4);
  config.micro_batches = 3;
  rt::TrainingSession session(std::move(config));
  session.run_step();
  const auto stats = session.run_step();
  // Three micro-batches' worth of activations flowed to the SSDs
  // (~0.8 GB offloadable per micro-batch for H8192 L2 B4 TP2).
  EXPECT_GT(stats.offloaded_bytes, u::gb(2));
  EXPECT_EQ(session.node().array(1).live_bytes(), 0);
}

TEST(Integration, StepTimeScalesWithMicroBatchCount) {
  auto one = base_config(rt::Strategy::ssdtrain, 8192, 2, 4);
  auto three = base_config(rt::Strategy::ssdtrain, 8192, 2, 4);
  three.micro_batches = 3;
  const auto s1 = run_one(std::move(one));
  const auto s3 = run_one(std::move(three));
  EXPECT_GT(s3.step_time, s1.step_time * 2.5);
  EXPECT_LT(s3.step_time, s1.step_time * 3.2);
}

TEST(Integration, LargerBatchDoesNotFitWithoutOffloadingButFitsWithIt) {
  // The paper's Fig. 7 point: SSDTrain admits batch sizes the baseline
  // cannot hold (its Fig. 7(b) omits the B16 no-offloading point for
  // H14336 because it overflows the 40 GB A100). Our simulated node lacks
  // the real framework's fixed memory overheads, so the crossover sits at
  // a somewhat larger batch.
  auto keep = base_config(rt::Strategy::keep_in_gpu, 14336, 3, 24);
  EXPECT_THROW(run_one(std::move(keep)), hw::OutOfDeviceMemory);
  auto ssd = base_config(rt::Strategy::ssdtrain, 14336, 3, 24);
  EXPECT_NO_THROW(run_one(std::move(ssd)));
}

TEST(Integration, ComputeUtilizationStaysHigh) {
  const auto ssd = run_one(base_config(rt::Strategy::ssdtrain));
  // The GPU defines the critical path; SSDTrain's CPU-side logic must not
  // starve it (paper §IV-B).
  EXPECT_GT(ssd.compute_utilization, 0.95);
}

TEST(Integration, CacheCountersAreConsistent) {
  const auto ssd = run_one(base_config(rt::Strategy::ssdtrain));
  const auto& c = ssd.cache;
  EXPECT_EQ(c.offload_started,
            ssd.offloader_totals.stores);
  EXPECT_GT(c.dedup_hits, 0u);
  EXPECT_GE(c.packs,
            c.offload_started + c.kept_budget + c.kept_scope +
                c.passthrough_weight + c.passthrough_cpu +
                c.passthrough_small + c.dedup_hits);
  // Keep-last-module fired (backward follows forward immediately).
  EXPECT_GT(c.kept_scope, 0u);
}

TEST(Integration, ReplayedStepsKeepLastModuleAndTrimExtents) {
  // Steps 2+ run through Executor::replay (the session records step 1).
  // The scheduler-hint behaviours must carry over to the replay pipeline:
  // the keep-last-module rule fires every replayed step, prefetch keeps
  // issuing, and every SSD extent is trimmed after its backward use.
  auto config = base_config(rt::Strategy::ssdtrain);
  rt::TrainingSession session(config);
  const auto steps = session.run_steps(4);
  ASSERT_NE(session.program(), nullptr);
  EXPECT_TRUE(session.program()->replayable);

  // Cache counters are cumulative; the per-step deltas of the replayed
  // steps must match each other and stay active.
  for (std::size_t i = 2; i < steps.size(); ++i) {
    const auto& prev = steps[i - 1].cache;
    const auto& cur = steps[i].cache;
    EXPECT_EQ(cur.kept_scope - prev.kept_scope,
              steps[1].cache.kept_scope - steps[0].cache.kept_scope);
    EXPECT_GT(cur.kept_scope, prev.kept_scope);
    EXPECT_GT(cur.prefetch_loads, prev.prefetch_loads);
    EXPECT_EQ(cur.releases - prev.releases,
              steps[1].cache.releases - steps[0].cache.releases);
  }
  // Eviction hygiene under replay: no space leaks on the array.
  EXPECT_EQ(session.node().array(config.gpu_index).live_bytes(), 0);
}

TEST(Integration, ReplayDisabledSessionMatchesReplayEnabledExactly) {
  // The ablation switch: --no-replay must be a pure A/B toggle.
  auto with = base_config(rt::Strategy::ssdtrain);
  auto without = base_config(rt::Strategy::ssdtrain);
  without.use_replay = false;
  rt::TrainingSession a(std::move(with));
  rt::TrainingSession b(std::move(without));
  for (int i = 0; i < 3; ++i) {
    const auto sa = a.run_step();
    const auto sb = b.run_step();
    EXPECT_EQ(sa.step_time, sb.step_time);
    EXPECT_EQ(sa.activation_peak, sb.activation_peak);
    EXPECT_EQ(sa.offloaded_bytes, sb.offloaded_bytes);
  }
  EXPECT_NE(a.program(), nullptr);
  EXPECT_EQ(b.program(), nullptr);
}
