// Tests for training schedules: gradient accumulation, 1F1B, GPipe, bubble
// fractions, and the keep-last-module condition the tensor cache hints on.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "ssdtrain/sched/schedule.hpp"
#include "ssdtrain/util/check.hpp"

namespace s = ssdtrain::sched;
namespace u = ssdtrain::util;

namespace {

int count_kind(const std::vector<s::Command>& cmds, s::CommandKind kind) {
  int n = 0;
  for (const auto& c : cmds) {
    if (c.kind == kind) ++n;
  }
  return n;
}

/// Every micro-batch's backward must come after its forward.
void check_causal(const std::vector<s::Command>& cmds) {
  std::set<int> forwarded;
  for (const auto& c : cmds) {
    if (c.kind == s::CommandKind::forward) {
      forwarded.insert(c.micro_batch);
    } else if (c.kind == s::CommandKind::backward) {
      EXPECT_TRUE(forwarded.contains(c.micro_batch))
          << "backward before forward for mb " << c.micro_batch;
    }
  }
}

}  // namespace

TEST(GradAccum, AlternatesForwardBackward) {
  const auto cmds = s::grad_accum_schedule(3);
  ASSERT_EQ(cmds.size(), 7u);
  EXPECT_EQ(cmds[0], (s::Command{s::CommandKind::forward, 0}));
  EXPECT_EQ(cmds[1], (s::Command{s::CommandKind::backward, 0}));
  EXPECT_EQ(cmds[4], (s::Command{s::CommandKind::forward, 2}));
  EXPECT_EQ(cmds[6].kind, s::CommandKind::optimizer_step);
  check_causal(cmds);
}

TEST(GradAccum, EveryForwardIsImmediatelyFollowedByItsBackward) {
  const auto cmds = s::grad_accum_schedule(4);
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    if (cmds[i].kind == s::CommandKind::forward) {
      EXPECT_TRUE(s::backward_follows_immediately(cmds, i));
    }
  }
  EXPECT_EQ(s::peak_in_flight_micro_batches(cmds), 1);
}

TEST(OneFOneB, LastStageInterleavesImmediately) {
  // The last stage runs F0 B0 F1 B1 ... — every backward immediate.
  const auto cmds = s::schedule_1f1b(4, 4, 3);
  check_causal(cmds);
  EXPECT_EQ(count_kind(cmds, s::CommandKind::forward), 4);
  EXPECT_EQ(count_kind(cmds, s::CommandKind::backward), 4);
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    if (cmds[i].kind == s::CommandKind::forward) {
      EXPECT_TRUE(s::backward_follows_immediately(cmds, i));
    }
  }
}

TEST(OneFOneB, FirstStageWarmsUpDeep) {
  const auto cmds = s::schedule_1f1b(8, 4, 0);
  check_causal(cmds);
  // First stage: pp-1 = 3 warm-up forwards before the first backward.
  EXPECT_EQ(cmds[0].kind, s::CommandKind::forward);
  EXPECT_EQ(cmds[1].kind, s::CommandKind::forward);
  EXPECT_EQ(cmds[2].kind, s::CommandKind::forward);
  EXPECT_EQ(cmds[3].kind, s::CommandKind::forward);
  EXPECT_EQ(cmds[4].kind, s::CommandKind::backward);
  EXPECT_EQ(s::peak_in_flight_micro_batches(cmds), 4);
}

TEST(OneFOneB, InFlightBoundedByStageDepth) {
  // 1F1B's point versus GPipe: in-flight micro-batches (and thus live
  // activations) are bounded by the remaining pipeline depth.
  for (int stage = 0; stage < 4; ++stage) {
    const auto cmds = s::schedule_1f1b(16, 4, stage);
    check_causal(cmds);
    EXPECT_LE(s::peak_in_flight_micro_batches(cmds), 4 - stage);
  }
}

TEST(GPipe, AllForwardsThenAllBackwards) {
  const auto cmds = s::schedule_gpipe(4, 2, 0);
  check_causal(cmds);
  EXPECT_EQ(s::peak_in_flight_micro_batches(cmds), 4);
  // Backwards run in reverse micro-batch order.
  EXPECT_EQ(cmds[4], (s::Command{s::CommandKind::backward, 3}));
  EXPECT_EQ(cmds[7], (s::Command{s::CommandKind::backward, 0}));
}

TEST(Bubble, FractionShrinksWithMoreMicroBatches) {
  // (pp-1)/(mb+pp-1): the paper's Fig. 8(a) motivation — larger micro-batch
  // sizes mean fewer micro-batches and larger bubbles, unless memory allows
  // raising both.
  EXPECT_DOUBLE_EQ(s::ideal_bubble_fraction(1, 1), 0.0);
  EXPECT_NEAR(s::ideal_bubble_fraction(8, 4), 3.0 / 11.0, 1e-12);
  EXPECT_GT(s::ideal_bubble_fraction(4, 8), s::ideal_bubble_fraction(32, 8));
  // The BLOOM-style example from the paper: mb >= 4 with pp gives
  // bubble >= 11.5%... here 32 micro-batches over 8 stages:
  EXPECT_NEAR(s::ideal_bubble_fraction(32, 8), 7.0 / 39.0, 1e-12);
}

TEST(Schedules, RejectBadArguments) {
  EXPECT_THROW(s::grad_accum_schedule(0), u::ContractViolation);
  EXPECT_THROW(s::schedule_1f1b(4, 4, 4), u::ContractViolation);
  EXPECT_THROW(s::schedule_1f1b(0, 4, 0), u::ContractViolation);
  // The Megatron constraint: interleaving needs mb % pp == 0.
  EXPECT_THROW(s::schedule_interleaved_1f1b(6, 4, 0, 2), u::ContractViolation);
}

TEST(Interleaved1F1B, EveryMicroBatchRunsOncePerVirtualStage) {
  // Schedule invariant: across the whole cluster, virtual stage
  // chunk * pp + stage forwards (and backwards) each micro-batch exactly
  // once — no chunk is skipped or double-run by the interleaving.
  const int mb = 8, pp = 4, v = 2;
  for (int stage = 0; stage < pp; ++stage) {
    const auto cmds =
        s::stage_schedule(s::PipelineKind::interleaved_1f1b, mb, pp, stage, v);
    std::map<std::pair<int, int>, int> forwards;   // {chunk, mb} -> count
    std::map<std::pair<int, int>, int> backwards;
    for (const auto& c : cmds) {
      if (c.kind == s::CommandKind::forward) ++forwards[{c.chunk, c.micro_batch}];
      if (c.kind == s::CommandKind::backward) ++backwards[{c.chunk, c.micro_batch}];
      EXPECT_GE(c.chunk, 0);
      EXPECT_LT(c.chunk, v);
    }
    EXPECT_EQ(forwards.size(), static_cast<std::size_t>(mb * v));
    EXPECT_EQ(backwards.size(), static_cast<std::size_t>(mb * v));
    for (const auto& entry : forwards) EXPECT_EQ(entry.second, 1);
    for (const auto& entry : backwards) EXPECT_EQ(entry.second, 1);
    EXPECT_EQ(cmds.back().kind, s::CommandKind::optimizer_step);
  }
}

TEST(Interleaved1F1B, BackwardNeverPrecedesItsForward) {
  // Causality holds per (chunk, micro-batch) pair on every stage of every
  // legal grid point.
  for (const auto& [mb, pp, v] : {std::tuple{4, 2, 2}, std::tuple{8, 4, 2},
                                  std::tuple{8, 2, 4}, std::tuple{12, 4, 3}}) {
    for (int stage = 0; stage < pp; ++stage) {
      const auto cmds = s::stage_schedule(s::PipelineKind::interleaved_1f1b,
                                          mb, pp, stage, v);
      std::set<std::pair<int, int>> forwarded;
      for (const auto& c : cmds) {
        if (c.kind == s::CommandKind::forward) {
          forwarded.insert({c.chunk, c.micro_batch});
        } else if (c.kind == s::CommandKind::backward) {
          EXPECT_TRUE(forwarded.contains({c.chunk, c.micro_batch}))
              << "mb=" << mb << " pp=" << pp << " v=" << v << " stage="
              << stage << ": backward before forward for chunk " << c.chunk
              << " mb " << c.micro_batch;
        }
      }
    }
  }
}

TEST(Interleaved1F1B, DegeneratesToPlain1F1BPeakInFlight) {
  // With one chunk per GPU the interleaved scheduler must reproduce the
  // plain 1F1B in-flight closed form pp - stage (the planner's budget
  // contract) whenever mb >= pp keeps the warm-up saturated.
  for (const int mb : {4, 8, 16}) {
    for (int stage = 0; stage < 4; ++stage) {
      const auto plain =
          s::stage_schedule(s::PipelineKind::one_f_one_b, mb, 4, stage);
      EXPECT_EQ(s::peak_in_flight_micro_batches(plain), 4 - stage)
          << "mb=" << mb << " stage=" << stage;
      const auto interleaved = s::stage_schedule(
          s::PipelineKind::interleaved_1f1b, mb, 4, stage, 1);
      EXPECT_EQ(interleaved, plain);
    }
  }
}

TEST(Schedules, CommandToString) {
  EXPECT_EQ(s::to_string({s::CommandKind::forward, 2}), "F2");
  EXPECT_EQ(s::to_string({s::CommandKind::backward, 0}), "B0");
  EXPECT_EQ(s::to_string({s::CommandKind::optimizer_step, 0}), "OPT");
}
