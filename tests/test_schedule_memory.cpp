// Schedule-vs-memory interactions: GPipe keeps every micro-batch's
// activations alive until its backward, while 1F1B bounds the in-flight
// count — the activation-pressure argument behind the paper's pipeline
// discussion (§IV-D). Also covers unfused-attention training end to end
// (the pre-FlashAttention configuration selective checkpointing targeted).

#include <gtest/gtest.h>

#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/runtime/session.hpp"
#include "ssdtrain/sched/schedule.hpp"
#include "ssdtrain/util/units.hpp"

namespace rt = ssdtrain::runtime;
namespace m = ssdtrain::modules;
namespace sched = ssdtrain::sched;
namespace u = ssdtrain::util;

namespace {

rt::StepStats run_schedule(const std::vector<sched::Command>& schedule,
                           rt::Strategy strategy) {
  rt::SessionConfig config;
  config.model = m::bert_config(4096, 2, 4);
  config.parallel.tensor_parallel = 2;
  config.parallel.pipeline_parallel = 4;
  config.strategy = strategy;
  rt::TrainingSession session(std::move(config));
  session.executor().run_step(session.model(), schedule);
  return session.executor().run_step(session.model(), schedule);
}

}  // namespace

TEST(ScheduleMemory, GPipeHoldsMoreActivationsThan1F1B) {
  constexpr int kMicroBatches = 6;
  // Stage 1 of 4: 1F1B bounds in-flight micro-batches at 3; GPipe holds
  // all 6 before the first backward.
  const auto gpipe = run_schedule(
      sched::schedule_gpipe(kMicroBatches, 4, 1), rt::Strategy::keep_in_gpu);
  const auto f1b1 = run_schedule(
      sched::schedule_1f1b(kMicroBatches, 4, 1), rt::Strategy::keep_in_gpu);
  EXPECT_GT(static_cast<double>(gpipe.activation_peak),
            1.5 * static_cast<double>(f1b1.activation_peak));
  // Same total work either way.
  EXPECT_NEAR(gpipe.algorithmic_flops, f1b1.algorithmic_flops,
              f1b1.algorithmic_flops * 0.01);
}

TEST(ScheduleMemory, SsdTrainTamesGPipePressure) {
  constexpr int kMicroBatches = 6;
  const auto keep = run_schedule(
      sched::schedule_gpipe(kMicroBatches, 4, 1), rt::Strategy::keep_in_gpu);
  const auto ssd = run_schedule(
      sched::schedule_gpipe(kMicroBatches, 4, 1), rt::Strategy::ssdtrain);
  // The all-forwards burst demands more write bandwidth than steady-state
  // 1F1B, so the planner's budget binds sooner; the reduction is real but
  // smaller than under gradient accumulation.
  EXPECT_LT(static_cast<double>(ssd.activation_peak),
            0.90 * static_cast<double>(keep.activation_peak));
  EXPECT_NEAR(ssd.step_time, keep.step_time, keep.step_time * 0.03);
}

TEST(ScheduleMemory, KeepLastModuleOnlyWhenBackwardIsImmediate) {
  // In 1F1B warm-up forwards, backward does NOT follow immediately, so the
  // keep-last-module hint must not fire for those micro-batches.
  const auto schedule = sched::schedule_1f1b(4, 4, 0);
  ASSERT_EQ(schedule[0].kind, sched::CommandKind::forward);
  EXPECT_FALSE(sched::backward_follows_immediately(schedule, 0));
  const auto stats = run_schedule(schedule, rt::Strategy::ssdtrain);
  EXPECT_GT(stats.offloaded_bytes, 0);
}

TEST(ScheduleMemory, UnfusedAttentionTrainsAndOffloadsMore) {
  rt::SessionConfig flash_cfg, unfused_cfg;
  flash_cfg.model = m::bert_config(4096, 2, 8);
  unfused_cfg.model = m::bert_config(4096, 2, 8);
  unfused_cfg.model.flash_attention = false;
  flash_cfg.parallel.tensor_parallel =
      unfused_cfg.parallel.tensor_parallel = 2;
  flash_cfg.strategy = unfused_cfg.strategy = rt::Strategy::ssdtrain;

  rt::TrainingSession flash(std::move(flash_cfg));
  flash.run_step();
  const auto f = flash.run_step();
  rt::TrainingSession unfused(std::move(unfused_cfg));
  unfused.run_step();
  const auto uf = unfused.run_step();

  // The unfused path materialises and offloads the 5*a*s^2*b/t softmax
  // intermediates that flash attention eliminates (paper §IV-C).
  EXPECT_GT(uf.offloaded_bytes, f.offloaded_bytes);
  EXPECT_GT(uf.step_time, f.step_time);
  EXPECT_LT(uf.drain_time, uf.step_time * 0.05);
}
