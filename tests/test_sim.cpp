// Unit tests for the discrete-event engine: simulator ordering, completions,
// stream semantics, thread pools, and the max-min fair bandwidth network.

#include <gtest/gtest.h>

#include <vector>

#include "ssdtrain/sim/bandwidth_network.hpp"
#include "ssdtrain/sim/completion.hpp"
#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/sim/stream.hpp"
#include "ssdtrain/sim/thread_pool.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace sim = ssdtrain::sim;
namespace u = ssdtrain::util;

TEST(Simulator, RunsEventsInTimeOrder) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, EqualTimesRunFifo) {
  sim::Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RejectsPastEvents) {
  sim::Simulator s;
  s.schedule_at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(1.0, [] {}), u::ContractViolation);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), u::ContractViolation);
}

TEST(Simulator, EventsCanScheduleEvents) {
  sim::Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    s.schedule_after(1.0, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  sim::Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(10.0, [&] { ++fired; });
  s.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, LogicalStampsStrictlyIncrease) {
  sim::Simulator s;
  const auto a = s.next_logical_stamp();
  const auto b = s.next_logical_stamp();
  EXPECT_LT(a, b);
}

TEST(Completion, FiresWaitersOnce) {
  sim::Simulator s;
  auto c = sim::Completion::create(s, "c");
  int count = 0;
  c->add_waiter([&] { ++count; });
  EXPECT_FALSE(c->done());
  s.schedule_at(2.0, [&] { c->fire(); });
  s.run();
  EXPECT_TRUE(c->done());
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(c->completion_time(), 2.0);
  EXPECT_THROW(c->fire(), u::ContractViolation);
}

TEST(Completion, LateWaiterRunsImmediately) {
  sim::Simulator s;
  auto c = sim::Completion::already_done(s);
  int count = 0;
  c->add_waiter([&] { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(Completion, WhenAllWaitsForEveryDep) {
  sim::Simulator s;
  auto a = sim::Completion::create(s);
  auto b = sim::Completion::create(s);
  auto all = sim::when_all(s, {a, b});
  s.schedule_at(1.0, [&] { a->fire(); });
  s.schedule_at(2.0, [&] { b->fire(); });
  s.run();
  EXPECT_TRUE(all->done());
  EXPECT_DOUBLE_EQ(all->completion_time(), 2.0);
}

TEST(Completion, WhenAllOfNothingIsDone) {
  sim::Simulator s;
  EXPECT_TRUE(sim::when_all(s, {})->done());
}

TEST(Stream, ExecutesTasksSequentially) {
  sim::Simulator s;
  sim::Stream stream(s, "compute");
  auto t1 = stream.enqueue("k1", 1.0);
  auto t2 = stream.enqueue("k2", 2.0);
  s.run();
  EXPECT_DOUBLE_EQ(t1->completion_time(), 1.0);
  EXPECT_DOUBLE_EQ(t2->completion_time(), 3.0);
  EXPECT_DOUBLE_EQ(stream.busy_time(), 3.0);
  EXPECT_EQ(stream.tasks_completed(), 2u);
  EXPECT_TRUE(stream.idle());
}

TEST(Stream, CrossStreamDependencyDelaysStart) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  sim::Stream b(s, "b");
  auto ka = a.enqueue("ka", 5.0);
  auto kb = b.enqueue("kb", 1.0, {ka});
  s.run();
  EXPECT_DOUBLE_EQ(kb->completion_time(), 6.0);
  // b was blocked, not busy, while a ran.
  EXPECT_DOUBLE_EQ(b.busy_time(), 1.0);
}

TEST(Stream, WaitForAppliesToSubsequentTasks) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  sim::Stream b(s, "b");
  auto ka = a.enqueue("ka", 4.0);
  b.wait_for(ka);
  auto kb = b.enqueue("kb", 1.0);
  s.run();
  EXPECT_DOUBLE_EQ(kb->completion_time(), 5.0);
}

TEST(Stream, MarkerFiresAfterPriorWork) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  a.enqueue("k", 2.5);
  auto marker = a.record_marker();
  s.run();
  EXPECT_DOUBLE_EQ(marker->completion_time(), 2.5);
}

TEST(Stream, DynamicTaskFinishesWhenCallbackInvoked) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  auto t = a.enqueue_dynamic("dyn", [&s](std::function<void()> finish) {
    s.schedule_after(3.0, finish);
  });
  auto after = a.enqueue("next", 1.0);
  s.run();
  EXPECT_DOUBLE_EQ(t->completion_time(), 3.0);
  EXPECT_DOUBLE_EQ(after->completion_time(), 4.0);
}

TEST(Stream, ObserverSeesTaskRecords) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  std::vector<sim::Stream::TaskRecord> records;
  a.set_observer([&](const sim::Stream::TaskRecord& r) {
    records.push_back(r);
  });
  a.enqueue("k1", 1.0);
  a.enqueue("k2", 2.0);
  s.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].label, "k1");
  EXPECT_DOUBLE_EQ(records[1].start, 1.0);
  EXPECT_DOUBLE_EQ(records[1].end, 3.0);
}

TEST(Stream, StaleFinishTokenIsRejected) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  sim::Stream::FinishToken stolen;
  a.enqueue_dynamic("dyn", [&stolen, &s](sim::Stream::FinishToken finish) {
    stolen = finish;
    s.schedule_after(1.0, finish);
  });
  s.run();
  // The task already finished; invoking its token again must trip the
  // double-finish guard instead of corrupting stream state.
  EXPECT_THROW(stolen(), u::ContractViolation);
}

TEST(Stream, LabelsAreOnlyRetainedWhileObserved) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  std::vector<std::string> labels;
  // Tasks enqueued before the observer attaches trace with empty names
  // (lazy-label contract); tasks enqueued after carry their labels.
  a.enqueue("before", 1.0);
  a.set_observer([&](const sim::Stream::TaskRecord& r) {
    labels.push_back(r.label);
  });
  a.enqueue("after1", 1.0);
  a.enqueue("after2", 1.0);
  s.run();
  EXPECT_EQ(labels, (std::vector<std::string>{"", "after1", "after2"}));
}

TEST(Stream, SingleDependencyUsesTheDepDirectly) {
  sim::Simulator s;
  sim::Stream a(s, "a");
  sim::Stream b(s, "b");
  auto ka = a.enqueue("ka", 2.0);
  auto kb = b.enqueue_after("kb", 1.0, ka);
  s.run();
  EXPECT_DOUBLE_EQ(kb->completion_time(), 3.0);
  EXPECT_DOUBLE_EQ(b.busy_time(), 1.0);
}

TEST(ThreadPool, StaleFinishTokenIsRejected) {
  sim::Simulator s;
  sim::SimThreadPool pool(s, "store", 1);
  sim::SimThreadPool::FinishToken stolen;
  pool.submit("job", [&stolen, &s](sim::SimThreadPool::FinishToken finish) {
    stolen = finish;
    s.schedule_after(1.0, finish);
  });
  s.run();
  EXPECT_THROW(stolen(), u::ContractViolation);
  EXPECT_EQ(pool.jobs_completed(), 1u);
}

TEST(ThreadPool, SingleWorkerIsFifo) {
  sim::Simulator s;
  sim::SimThreadPool pool(s, "store", 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    pool.submit("job", [&s, &order, i](std::function<void()> finish) {
      s.schedule_after(1.0, [&order, i, finish]() {
        order.push_back(i);
        finish();
      });
    });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_EQ(pool.jobs_completed(), 3u);
}

TEST(ThreadPool, MultipleWorkersRunConcurrently) {
  sim::Simulator s;
  sim::SimThreadPool pool(s, "store", 2);
  std::vector<sim::CompletionPtr> done;
  for (int i = 0; i < 4; ++i) {
    done.push_back(
        pool.submit("job", [&s](std::function<void()> finish) {
          s.schedule_after(1.0, finish);
        }));
  }
  s.run();
  // Two workers, four 1s jobs: pairs finish at t=1 and t=2.
  EXPECT_DOUBLE_EQ(done[0]->completion_time(), 1.0);
  EXPECT_DOUBLE_EQ(done[1]->completion_time(), 1.0);
  EXPECT_DOUBLE_EQ(done[2]->completion_time(), 2.0);
  EXPECT_DOUBLE_EQ(done[3]->completion_time(), 2.0);
  EXPECT_TRUE(pool.idle());
}

TEST(Bandwidth, SingleFlowRunsAtCapacity) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  bool done = false;
  net.start_flow("t", u::gb(20), {link}, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_NEAR(net.resource_delivered(link), 20e9, 1.0);
}

TEST(Bandwidth, TwoFlowsShareFairly) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  double t1 = -1, t2 = -1;
  net.start_flow("a", u::gb(10), {link}, [&] { t1 = s.now(); });
  net.start_flow("b", u::gb(10), {link}, [&] { t2 = s.now(); });
  s.run();
  // Equal shares of 5 GB/s: both finish at t=2.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(Bandwidth, ShortFlowReleasesCapacityToLongFlow) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  double t_short = -1, t_long = -1;
  net.start_flow("long", u::gb(30), {link}, [&] { t_long = s.now(); });
  net.start_flow("short", u::gb(5), {link}, [&] { t_short = s.now(); });
  s.run();
  // Share 5/5 until short drains at t=1 (5 GB at 5 GB/s); long then has
  // 25 GB left at 10 GB/s -> finishes at t=3.5.
  EXPECT_NEAR(t_short, 1.0, 1e-9);
  EXPECT_NEAR(t_long, 3.5, 1e-9);
}

TEST(Bandwidth, RateCapLimitsFlowBelowFairShare) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  double t_capped = -1, t_free = -1;
  net.start_flow("capped", u::gb(4), {link}, [&] { t_capped = s.now(); },
                 u::gbps(2));
  net.start_flow("free", u::gb(16), {link}, [&] { t_free = s.now(); });
  s.run();
  // Capped flow: 2 GB/s -> done at t=2. Free flow gets 8 GB/s -> done at
  // 16/8 = 2.0 as well.
  EXPECT_NEAR(t_capped, 2.0, 1e-9);
  EXPECT_NEAR(t_free, 2.0, 1e-9);
}

TEST(Bandwidth, MultiResourcePathTakesBottleneck) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto pcie = net.add_resource("pcie", u::gbps(20));
  auto ssd = net.add_resource("ssd", u::gbps(6));
  double t = -1;
  net.start_flow("w", u::gb(12), {pcie, ssd}, [&] { t = s.now(); });
  s.run();
  EXPECT_NEAR(t, 2.0, 1e-9);  // limited by the 6 GB/s SSD
  EXPECT_NEAR(net.resource_delivered(pcie), 12e9, 1.0);
}

TEST(Bandwidth, MaxMinFairnessAcrossSharedBottleneck) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto l1 = net.add_resource("l1", u::gbps(10));
  auto l2 = net.add_resource("l2", u::gbps(4));
  // Flow A uses l1 only; flows B and C traverse l1+l2.
  // Max-min: B and C get 2 each (l2 bottleneck), A gets 10-4=6.
  double ta = -1;
  net.start_flow("a", u::gb(6), {l1}, [&] { ta = s.now(); });
  net.start_flow("b", u::gb(20), {l1, l2}, [] {});
  net.start_flow("c", u::gb(20), {l1, l2}, [] {});
  s.run_until(0.999);
  EXPECT_LT(ta, 0.0);  // A still running just before t=1
  s.run();
  EXPECT_NEAR(ta, 1.0, 1e-6);
}

TEST(Bandwidth, ZeroByteFlowCompletesImmediately) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  (void)link;
  bool done = false;
  net.start_flow("empty", 0, {link}, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Bandwidth, CompletionCallbackCanStartNewFlow) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  double t2 = -1;
  net.start_flow("first", u::gb(10), {link}, [&] {
    net.start_flow("second", u::gb(10), {link}, [&] { t2 = s.now(); });
  });
  s.run();
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(Bandwidth, UtilizationReflectsBusyFraction) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  net.start_flow("t", u::gb(10), {link}, [] {});
  s.run();            // busy 0..1
  s.run_until(2.0);   // idle 1..2
  EXPECT_NEAR(net.resource_utilization(link), 0.5, 1e-9);
}

TEST(Bandwidth, SetCapacityReratesActiveFlows) {
  sim::Simulator s;
  sim::BandwidthNetwork net(s);
  auto link = net.add_resource("pcie", u::gbps(10));
  double t = -1;
  net.start_flow("t", u::gb(20), {link}, [&] { t = s.now(); });
  s.schedule_at(1.0, [&] { net.set_capacity(link, u::gbps(5)); });
  s.run();
  // 10 GB in first second, remaining 10 GB at 5 GB/s -> t = 3.
  EXPECT_NEAR(t, 3.0, 1e-9);
}
