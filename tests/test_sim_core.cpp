// Property and unit tests for the zero-allocation event core: the 4-ary
// EventHeap against a std::priority_queue reference model, pooled
// completions + intrusive waiter lists against the waiter-vector
// semantics they replaced, util::UniqueFunction, the slab pool, label
// interning, and the steady-state zero-allocation guarantee of the
// Simulator hot path.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <random>
#include <string>
#include <vector>

#include "ssdtrain/sim/completion.hpp"
#include "ssdtrain/sim/event_heap.hpp"
#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/sim/stream.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/label.hpp"
#include "ssdtrain/util/pool.hpp"
#include "ssdtrain/util/unique_function.hpp"

namespace sim = ssdtrain::sim;
namespace u = ssdtrain::util;

namespace {

std::atomic<std::uint64_t> g_allocs{0};

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

}  // namespace

// The counting overrides pair malloc/free across the replaced global
// new/delete; GCC's -Wmismatched-new-delete cannot see that pairing once
// call sites inline the replacements.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// ---------------------------------------------------------------------------
// EventHeap vs std::priority_queue reference
// ---------------------------------------------------------------------------

namespace {

struct RefEntry {
  double time;
  std::uint64_t seq;
  int value;
};
struct RefLater {
  bool operator()(const RefEntry& a, const RefEntry& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

TEST(EventHeap, MatchesPriorityQueueReferenceAcrossSeeds) {
  // >= 12 seeds per the regression checklist: random interleavings of
  // pushes (with heavy time ties) and pops must yield identical orderings.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    std::mt19937_64 rng(seed);
    sim::EventHeap<int> heap;
    std::priority_queue<RefEntry, std::vector<RefEntry>, RefLater> ref;
    std::uint64_t seq = 0;
    int next_value = 0;
    // Times drawn from a small set to force FIFO tie-breaks constantly.
    std::uniform_real_distribution<double> time_dist(0.0, 4.0);
    std::uniform_int_distribution<int> op_dist(0, 99);

    for (int op = 0; op < 4000; ++op) {
      if (heap.empty() || op_dist(rng) < 60) {
        const double t = std::floor(time_dist(rng));  // {0,1,2,3}
        ++seq;
        heap.push(t, seq, int{next_value});
        ref.push(RefEntry{t, seq, next_value});
        ++next_value;
      } else {
        const auto got = heap.pop();
        const RefEntry want = ref.top();
        ref.pop();
        ASSERT_EQ(got.time, want.time) << "seed " << seed;
        ASSERT_EQ(got.seq, want.seq) << "seed " << seed;
        ASSERT_EQ(got.payload, want.value) << "seed " << seed;
      }
    }
    while (!heap.empty()) {
      const auto got = heap.pop();
      const RefEntry want = ref.top();
      ref.pop();
      ASSERT_EQ(got.seq, want.seq) << "seed " << seed;
      ASSERT_EQ(got.payload, want.value) << "seed " << seed;
    }
    EXPECT_TRUE(ref.empty());
  }
}

TEST(EventHeap, ClearDestroysPayloadsInPlace) {
  auto flag = std::make_shared<int>(7);
  sim::EventHeap<std::shared_ptr<int>> heap;
  heap.push(1.0, 1, std::shared_ptr<int>(flag));
  heap.push(0.5, 2, std::shared_ptr<int>(flag));
  EXPECT_EQ(flag.use_count(), 3);
  heap.clear();
  EXPECT_EQ(flag.use_count(), 1);
  EXPECT_TRUE(heap.empty());
}

// ---------------------------------------------------------------------------
// Simulator event ordering equivalence (through the public API)
// ---------------------------------------------------------------------------

TEST(SimulatorProperty, RandomScheduleOrdersMatchReferenceModel) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> time_dist(0.0, 3.0);

    sim::Simulator s;
    std::vector<int> executed;
    std::priority_queue<RefEntry, std::vector<RefEntry>, RefLater> ref;
    std::uint64_t seq = 0;
    for (int i = 0; i < 500; ++i) {
      const double t = std::floor(time_dist(rng) * 2.0) / 2.0;  // .5 grid
      s.schedule_at(t, [&executed, i] { executed.push_back(i); });
      ref.push(RefEntry{t, ++seq, i});
    }
    s.run();
    std::vector<int> expected;
    while (!ref.empty()) {
      expected.push_back(ref.top().value);
      ref.pop();
    }
    EXPECT_EQ(executed, expected) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// run_until + drop_pending semantics (regression for the clock-pinning
// interaction: work scheduled by events at exactly t must run before the
// clock is pinned)
// ---------------------------------------------------------------------------

TEST(SimulatorRunUntil, EventAtHorizonSchedulingAtHorizonStillRuns) {
  sim::Simulator s;
  std::vector<int> fired;
  s.schedule_at(1.0, [&] {
    fired.push_back(1);
    s.schedule_at(1.0, [&] { fired.push_back(2); });
    s.schedule_after(0.0, [&] { fired.push_back(3); });
  });
  s.run_until(1.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SimulatorRunUntil, DropPendingInsideEventThenRescheduleAtHorizon) {
  sim::Simulator s;
  std::vector<int> fired;
  s.schedule_at(1.0, [&] {
    s.drop_pending();  // discards the event at t=2 below
    fired.push_back(1);
    s.schedule_at(1.0, [&] { fired.push_back(2); });
  });
  s.schedule_at(2.0, [&] { fired.push_back(99); });
  s.run_until(1.5);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(s.now(), 1.5);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SimulatorRunUntil, HorizonEventAfterPriorRunUntilAtSameTime) {
  sim::Simulator s;
  int fired = 0;
  s.run_until(1.0);
  s.schedule_at(1.0, [&] { ++fired; });
  s.run_until(1.0);  // t == now(): events at exactly now still run
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorDropPending, DestroysClosuresWithoutRunningThem) {
  sim::Simulator s;
  auto token = std::make_shared<int>(1);
  bool ran = false;
  s.schedule_at(1.0, [token, &ran] { ran = true; });
  EXPECT_EQ(token.use_count(), 2);
  s.drop_pending();
  EXPECT_EQ(token.use_count(), 1);  // closure destroyed in place
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

// ---------------------------------------------------------------------------
// Pooled completions vs the waiter-vector reference semantics
// ---------------------------------------------------------------------------

namespace {

/// The pre-refactor completion semantics, reimplemented as the reference
/// model: waiter vector, fire runs waiters in registration order,
/// when_all via a shared countdown registered on each unfired dep.
struct RefCompletion {
  bool done = false;
  std::vector<std::function<void()>> waiters;

  void add_waiter(std::function<void()> fn) {
    if (done) {
      fn();
      return;
    }
    waiters.push_back(std::move(fn));
  }
  void fire() {
    ASSERT_FALSE(done);
    done = true;
    std::vector<std::function<void()>> pending = std::move(waiters);
    waiters.clear();
    for (auto& w : pending) w();
  }
};

}  // namespace

TEST(CompletionProperty, PooledWaitersMatchVectorReferenceAcrossSeeds) {
  // >= 12 seeds: random registration/fire/when_all interleavings must
  // produce the identical global callback order as the reference model.
  for (std::uint64_t seed = 0; seed < 14; ++seed) {
    std::mt19937_64 rng(seed);
    constexpr int kCompletions = 24;

    sim::Simulator s;
    std::vector<sim::CompletionPtr> impl;
    std::vector<std::shared_ptr<RefCompletion>> ref;
    std::vector<int> impl_log;
    std::vector<int> ref_log;
    for (int i = 0; i < kCompletions; ++i) {
      impl.push_back(sim::Completion::create(s, "prop"));
      ref.push_back(std::make_shared<RefCompletion>());
    }
    std::vector<int> unfired;
    for (int i = 0; i < kCompletions; ++i) unfired.push_back(i);

    int next_tag = 0;
    std::uniform_int_distribution<int> op_dist(0, 99);
    while (!unfired.empty()) {
      const int op = op_dist(rng);
      if (op < 45) {
        // Register a logging waiter on a random completion (fired or not).
        const int i =
            std::uniform_int_distribution<int>(0, kCompletions - 1)(rng);
        const int tag = next_tag++;
        impl[i]->add_waiter([&impl_log, tag] { impl_log.push_back(tag); });
        ref[i]->add_waiter([&ref_log, tag] { ref_log.push_back(tag); });
      } else if (op < 65 && unfired.size() >= 2) {
        // when_all over a random subset with >= 2 unfired deps: the
        // combiner path (the 0/1-dep fast paths intentionally change
        // waiter placement and are covered by dedicated tests below).
        std::vector<sim::CompletionPtr> deps;
        std::vector<int> dep_indices;
        for (int i : unfired) {
          if (op_dist(rng) < 50) dep_indices.push_back(i);
        }
        if (dep_indices.size() < 2) continue;
        for (int i : dep_indices) deps.push_back(impl[i]);
        auto all = sim::when_all(s, deps, "all");
        const int tag = next_tag++;
        all->add_waiter([&impl_log, tag] { impl_log.push_back(tag); });
        // Reference combiner: countdown registered on each dep.
        auto remaining =
            std::make_shared<std::size_t>(dep_indices.size());
        auto fire_tag = [&ref_log, tag, remaining] {
          if (--*remaining == 0) ref_log.push_back(tag);
        };
        for (int i : dep_indices) ref[i]->add_waiter(fire_tag);
      } else {
        // Fire a random unfired completion.
        const std::size_t pick = std::uniform_int_distribution<std::size_t>(
            0, unfired.size() - 1)(rng);
        const int i = unfired[pick];
        unfired.erase(unfired.begin() + static_cast<std::ptrdiff_t>(pick));
        impl[i]->fire();
        ref[i]->fire();
      }
      ASSERT_EQ(impl_log, ref_log) << "seed " << seed;
    }
    EXPECT_EQ(impl_log, ref_log) << "seed " << seed;
  }
}

TEST(CompletionFastPath, WhenAllOfSingleUnfiredDepReturnsTheDep) {
  sim::Simulator s;
  auto fired = sim::Completion::already_done(s);
  auto pending = sim::Completion::create(s, "dep");
  auto all = sim::when_all(s, {fired, pending});
  EXPECT_EQ(all.get(), pending.get());
}

TEST(CompletionFastPath, WhenAllOfAllFiredDepsIsFreshAndDone) {
  sim::Simulator s;
  auto a = sim::Completion::already_done(s);
  auto b = sim::Completion::already_done(s);
  auto all = sim::when_all(s, {a, b});
  EXPECT_TRUE(all->done());
  EXPECT_NE(all.get(), a.get());
  EXPECT_NE(all.get(), b.get());
}

TEST(Completion, WaiterDroppingLastReferenceDuringFireIsSafe) {
  sim::Simulator s;
  auto c = sim::Completion::create(s, "self-drop");
  int count = 0;
  c->add_waiter([&count] { ++count; });
  c->add_waiter([&c, &count] {
    ++count;
    c.reset();  // last external reference dropped mid-fire
  });
  c->add_waiter([&count] { ++count; });
  sim::Completion* raw = c.get();
  raw->fire();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(c, nullptr);
}

TEST(Completion, UnfiredWaitersAreDestroyedWithTheCompletion) {
  sim::Simulator s;
  auto token = std::make_shared<int>(0);
  {
    auto c = sim::Completion::create(s, "dropped");
    c->add_waiter([token] { ADD_FAILURE() << "must never run"; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Completion, PoolOutlivesSimulatorForLateDestruction) {
  // Completions may outlive their Simulator during teardown; destroying
  // them afterwards must not touch freed pool memory (the shared pool
  // handle keeps the slabs alive).
  sim::CompletionPtr survivor;
  {
    sim::Simulator s;
    survivor = sim::Completion::create(s, "survivor");
    survivor->add_waiter([] {});
  }
  EXPECT_FALSE(survivor->done());
  survivor.reset();  // waiter node freed into the still-alive pool
}

// ---------------------------------------------------------------------------
// util::UniqueFunction
// ---------------------------------------------------------------------------

TEST(UniqueFunction, InvokesInlineAndHeapCallables) {
  int hits = 0;
  u::UniqueFunction<void()> small = [&hits] { ++hits; };
  small();
  EXPECT_EQ(hits, 1);

  struct Big {
    unsigned char pad[128];
    int* hits;
    void operator()() const { ++*hits; }
  };
  u::UniqueFunction<void()> big = Big{{}, &hits};
  big();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, SupportsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(41);
  u::UniqueFunction<int()> fn = [owned = std::move(owned)] {
    return *owned + 1;
  };
  u::UniqueFunction<int()> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(moved(), 42);
}

TEST(UniqueFunction, MoveAssignmentDestroysPreviousTarget) {
  auto token = std::make_shared<int>(0);
  u::UniqueFunction<void()> fn = [token] {};
  EXPECT_EQ(token.use_count(), 2);
  fn = [] {};
  EXPECT_EQ(token.use_count(), 1);
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(UniqueFunction, PassesArgumentsThrough) {
  u::UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(20, 22), 42);
}

namespace {

/// Counts move-constructions and destructions: the probe for which
/// relocation lane a closure takes through UniqueFunction's move.
struct RelocationProbe {
  int* moves = nullptr;
  int* destroys = nullptr;
  RelocationProbe(int* m, int* d) : moves(m), destroys(d) {}
  RelocationProbe(RelocationProbe&& other) noexcept
      : moves(other.moves), destroys(other.destroys) {
    ++*moves;
  }
  RelocationProbe(const RelocationProbe&) = delete;
  ~RelocationProbe() {
    if (destroys != nullptr) ++*destroys;
  }
};

}  // namespace

TEST(UniqueFunctionRelocation, OptInClosureTakesTheMemcpyLane) {
  int moves = 0;
  int destroys = 0;
  int destroys_after_construction = 0;
  {
    // Construction itself moves the closure into the wrapper and the
    // wrapper into the function's storage; only what happens *after* is
    // the relocation lane under test.
    u::UniqueFunction<int()> fn = u::relocatable(
        [probe = RelocationProbe(&moves, &destroys)] { return 7; });
    const int moves_after_construction = moves;
    destroys_after_construction = destroys;
    // Relocating through the queue: a plain closure with a nontrivial
    // member would move-construct + destroy per hop; the opt-in wrapper
    // memcpys and abandons the source — no move, no source destructor.
    u::UniqueFunction<int()> hop1 = std::move(fn);
    u::UniqueFunction<int()> hop2 = std::move(hop1);
    EXPECT_EQ(moves, moves_after_construction);
    EXPECT_EQ(destroys, destroys_after_construction);
    EXPECT_EQ(hop2(), 7);
  }
  // Exactly one live copy was ever destroyed, by the final owner.
  EXPECT_EQ(destroys, destroys_after_construction + 1);
}

TEST(UniqueFunctionRelocation, PlainClosureStillMovesPerHop) {
  int moves = 0;
  u::UniqueFunction<int()> fn =
      [probe = RelocationProbe(&moves, nullptr)] { return 7; };
  const int moves_after_construction = moves;
  u::UniqueFunction<int()> hop = std::move(fn);
  EXPECT_GT(moves, moves_after_construction);
  EXPECT_EQ(hop(), 7);
}

TEST(UniqueFunctionRelocation, CompletionPtrCapturesSurviveTheMemcpyLane) {
  // CompletionPtr opts in via enable_trivial_relocation: a relocatable
  // waiter capturing one must keep the refcount exact across queue hops.
  sim::Simulator s;
  int fired = 0;
  {
    auto c = sim::Completion::create(s);
    u::UniqueFunction<void()> waiter =
        u::relocatable([c, &fired] { fired += c->done() ? 0 : 1; });
    u::UniqueFunction<void()> hop = std::move(waiter);
    u::UniqueFunction<void()> hop2 = std::move(hop);
    hop2();
    EXPECT_EQ(fired, 1);
    // Dropping the relocated closure releases the completion's reference;
    // with `c` it holds the last two refs on the pooled block.
  }
  EXPECT_EQ(s.pool()->live(), 0u);
  static_assert(u::is_trivially_relocatable_v<sim::CompletionPtr>);
  static_assert(
      !u::is_trivially_relocatable_v<std::shared_ptr<int>>);  // no opt-in
}

// ---------------------------------------------------------------------------
// util::SlabPool
// ---------------------------------------------------------------------------

TEST(SlabPool, RecyclesBlocksWithoutNewChunks) {
  auto pool = u::SlabPool::create();
  void* a = pool->allocate(100);
  pool->deallocate(a, 100);
  const std::size_t chunks = pool->chunks_allocated();
  for (int i = 0; i < 10000; ++i) {
    void* p = pool->allocate(100);
    pool->deallocate(p, 100);
  }
  EXPECT_EQ(pool->chunks_allocated(), chunks);
  EXPECT_EQ(pool->live(), 0u);
}

TEST(SlabPool, OversizedBlocksFallThroughToOperatorNew) {
  auto pool = u::SlabPool::create();
  void* p = pool->allocate(10000);
  ASSERT_NE(p, nullptr);
  pool->deallocate(p, 10000);
  EXPECT_EQ(pool->chunks_allocated(), 0u);
}

TEST(SlabPool, OrphanedPoolIsReapedByLastBlock) {
  // A block outliving every handle (a completion held past Simulator
  // teardown) must keep the pool alive; freeing it reaps the pool.
  void* block = nullptr;
  u::SlabPool* raw = nullptr;
  {
    auto pool = u::SlabPool::create();
    raw = pool.get();
    block = pool->allocate(64);
  }
  ASSERT_NE(block, nullptr);
  raw->deallocate(block, 64);  // last live block: pool self-deletes here
}

// ---------------------------------------------------------------------------
// util::Label
// ---------------------------------------------------------------------------

TEST(Label, InternsAndRendersAllShapes) {
  const u::Label empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.str(), "");

  const u::Label plain("gpu0.compute");
  EXPECT_EQ(plain.str(), "gpu0.compute");
  EXPECT_EQ(u::Label("gpu0.compute"), plain);  // same intern id

  const u::Label tagged = u::Label::tagged(u::Label("store"), 42, 0x9f3a);
  EXPECT_EQ(tagged.str(), "store:t000042-0000000000009f3a");

  const u::Label suffixed = u::Label::suffixed(u::Label("h.out"), ".reload");
  EXPECT_EQ(suffixed.str(), "h.out.reload");

  const std::string scratch = "scratch-name";
  EXPECT_EQ(u::Label::view(scratch).str(), "scratch-name");
}

TEST(Label, TaggedRenderingMatchesTensorIdFormat) {
  EXPECT_EQ(u::format_tensor_tag(7, 0xdeadbeef), "t000007-00000000deadbeef");
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state of the event hot path
// ---------------------------------------------------------------------------

TEST(ZeroAllocation, SteadyStatePingPongDoesNotTouchTheHeap) {
  if (kSanitized) {
    GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
  }
  sim::Simulator s;
  struct Payload {
    std::uint64_t values[5];
  };
  const Payload payload{{1, 2, 3, 4, 5}};
  // 40-byte capture: inline in UniqueFunction, heap in std::function.
  std::function<void(std::uint64_t)> hop = [&](std::uint64_t remaining) {
    if (remaining == 0) return;
    s.schedule_after(1e-6, [&s, &hop, payload, remaining] {
      (void)payload;
      hop(remaining - 1);
    });
  };
  hop(256);  // warmup: grows the event heap to its high-water mark
  s.run();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  hop(200);
  s.run();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "event scheduling allocated on the steady-state hot path";
}

TEST(ZeroAllocation, SteadyStateCompletionChurnStaysInThePool) {
  if (kSanitized) {
    GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
  }
  sim::Simulator s;
  // Labels interned up front: interning allocates once per unique string.
  const u::Label warm("warm");
  const u::Label steady("steady");
  // Warmup: reach the pool's high-water mark.
  for (int i = 0; i < 512; ++i) {
    auto c = sim::Completion::create(s, warm);
    c->add_waiter([] {});
    c->fire();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) {
    auto c = sim::Completion::create(s, steady);
    c->add_waiter([] {});
    c->fire();
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "completion create/wait/fire allocated at steady state";
}
