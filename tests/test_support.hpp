#pragma once

// Shared test fixture pieces: a minimal ExecutionContext that plans modules
// against a real DeviceAllocator, counts kernels/FLOPs, and can install a
// recording pack hook that measures exactly which saved tensors a module
// registers (deduplicated by get_id, weights and small/CPU tensors
// excluded) — the same accounting the paper's activation model performs.

#include <set>
#include <string>
#include <vector>

#include "ssdtrain/graph/graph.hpp"
#include "ssdtrain/hw/device_allocator.hpp"
#include "ssdtrain/modules/execution_context.hpp"
#include "ssdtrain/tensor/tensor.hpp"
#include "ssdtrain/tensor/tensor_id.hpp"

namespace ssdtrain::testing {

class TestContext final : public modules::ExecutionContext {
 public:
  explicit TestContext(hw::DeviceAllocator& allocator,
                       parallel::ParallelConfig parallel = {})
      : factory_(allocator), parallel_(parallel) {}

  // -- ExecutionContext ------------------------------------------------------
  tensor::Tensor make_activation(std::string label, tensor::TensorShape shape,
                                 tensor::DType dtype) override {
    ++activations_created;
    return factory_.cuda(std::move(label), std::move(shape), dtype,
                         hw::MemoryTag::activation);
  }

  tensor::Tensor weight(const std::string& key, tensor::TensorShape shape,
                        tensor::DType dtype) override {
    auto it = weights_.find(key);
    if (it != weights_.end()) return it->second;
    auto w = factory_.cuda(key, std::move(shape), dtype,
                           hw::MemoryTag::weights);
    weight_storages_.insert(w.storage().get());
    weights_.emplace(key, w);
    return w;
  }

  tensor::Tensor make_host_tensor(std::string label,
                                  tensor::TensorShape shape,
                                  tensor::DType dtype) override {
    return factory_.cpu(std::move(label), std::move(shape), dtype);
  }

  void kernel(std::string label, util::Flops flops, util::Bytes bytes_read,
              util::Bytes bytes_written,
              std::vector<tensor::Tensor> consumed) override {
    (void)consumed;
    kernel_labels.push_back(std::move(label));
    total_flops += flops;
    total_bytes += bytes_read + bytes_written;
    ++kernels;
  }

  void tp_all_reduce(util::Bytes bytes) override {
    ++all_reduces;
    all_reduce_bytes += bytes;
  }

  graph::GraphNode& make_node(std::string name) override {
    return graph_.make_node(std::move(name));
  }

  const graph::SavedTensorHooks* hooks() const override {
    if (!hook_stack_.empty()) return hook_stack_.back();
    return hooks_;
  }

  const parallel::ParallelConfig& parallel() const override {
    return parallel_;
  }
  int micro_batch() const override { return micro_batch_; }
  bool recompute_mode() const override { return recompute_mode_; }

  void push_hooks(const graph::SavedTensorHooks* hooks) override {
    hook_stack_.push_back(hooks);
  }
  void pop_hooks() override { hook_stack_.pop_back(); }
  void begin_recompute_segment() override { ++recompute_segments_open; }
  void end_recompute_segment() override {
    --recompute_segments_open;
    ++recompute_segments_closed;
  }

  // -- test helpers ----------------------------------------------------------
  /// Installs a hook pair that records deduplicated saved-activation bytes
  /// (weights/CPU/small tensors pass through, as in Alg. 1) and keeps the
  /// tensors alive so backward can unpack them.
  void install_recording_hooks(std::int64_t min_elements = 1 << 20) {
    recording_hooks_.pack = [this,
                             min_elements](const tensor::Tensor& t)
        -> graph::PackedValue {
      if (t.is_cpu() || weight_storages_.contains(t.storage().get()) ||
          t.numel() < min_elements) {
        return t;
      }
      const auto id = ids_.get_id(t);
      if (!recorded_ids_.contains(id)) {
        recorded_ids_.insert(id);
        recorded_bytes += t.bytes();
      } else {
        ++dedup_hits;
      }
      kept_[id] = t;
      return id;
    };
    recording_hooks_.unpack =
        [this](const graph::PackedValue& v) -> tensor::Tensor {
      if (std::holds_alternative<tensor::Tensor>(v)) {
        return std::get<tensor::Tensor>(v);
      }
      return kept_.at(std::get<tensor::TensorId>(v));
    };
    hooks_ = &recording_hooks_;
  }

  void set_micro_batch(int mb) { micro_batch_ = mb; }
  void set_recompute(bool on) { recompute_mode_ = on; }
  void drop_kept() { kept_.clear(); }

  // Counters (public on purpose: read by assertions).
  std::size_t kernels = 0;
  std::size_t activations_created = 0;
  std::size_t all_reduces = 0;
  util::Bytes all_reduce_bytes = 0;
  util::Flops total_flops = 0.0;
  double total_bytes = 0.0;
  util::Bytes recorded_bytes = 0;
  std::size_t dedup_hits = 0;
  int recompute_segments_open = 0;
  int recompute_segments_closed = 0;
  std::vector<std::string> kernel_labels;

 private:
  tensor::TensorFactory factory_;
  parallel::ParallelConfig parallel_;
  graph::Graph graph_;
  const graph::SavedTensorHooks* hooks_ = nullptr;
  std::vector<const graph::SavedTensorHooks*> hook_stack_;
  graph::SavedTensorHooks recording_hooks_;
  tensor::IdAssigner ids_;
  std::set<tensor::TensorId> recorded_ids_;
  std::map<tensor::TensorId, tensor::Tensor> kept_;
  std::map<std::string, tensor::Tensor> weights_;
  std::set<const tensor::Storage*> weight_storages_;
  int micro_batch_ = 0;
  bool recompute_mode_ = false;
};

}  // namespace ssdtrain::testing
