// Unit tests for the parallel sweep engine: SweepSpec grid enumeration,
// SweepRunner determinism across worker counts, error isolation, and the
// CLI option parsing the bench binaries share.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ssdtrain/sweep/cli.hpp"
#include "ssdtrain/sweep/resume.hpp"
#include "ssdtrain/sweep/runner.hpp"
#include "ssdtrain/sweep/spec.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/csv.hpp"

namespace sweep = ssdtrain::sweep;
namespace u = ssdtrain::util;

TEST(SweepSpec, EnumeratesCartesianProductRowMajor) {
  sweep::SweepSpec spec;
  spec.axis("hidden", std::vector<std::int64_t>{8192, 12288})
      .axis("strategy", std::vector<std::string>{"keep", "ssd"})
      .axis("batch", std::vector<std::int64_t>{4, 8, 16});
  EXPECT_EQ(spec.size(), 12u);
  EXPECT_EQ(spec.axis_count(), 3u);

  const auto points = spec.points();
  ASSERT_EQ(points.size(), 12u);
  // Last axis varies fastest.
  EXPECT_EQ(points[0].i64("hidden"), 8192);
  EXPECT_EQ(points[0].str("strategy"), "keep");
  EXPECT_EQ(points[0].i64("batch"), 4);
  EXPECT_EQ(points[1].i64("batch"), 8);
  EXPECT_EQ(points[3].str("strategy"), "ssd");
  EXPECT_EQ(points[6].i64("hidden"), 12288);
  EXPECT_EQ(points[11].i64("batch"), 16);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index(), i);
  }
}

TEST(SweepSpec, EmptySpecHasNoPoints) {
  sweep::SweepSpec spec;
  EXPECT_EQ(spec.size(), 0u);
  EXPECT_TRUE(spec.points().empty());
}

TEST(SweepSpec, TypedAccessorsEnforceAxisTypes) {
  sweep::SweepSpec spec;
  spec.axis("n", std::vector<std::int64_t>{7})
      .axis("frac", std::vector<double>{0.5})
      .axis("name", std::vector<std::string>{"bert"});
  const auto point = spec.points().front();
  EXPECT_EQ(point.i64("n"), 7);
  EXPECT_DOUBLE_EQ(point.f64("frac"), 0.5);
  EXPECT_DOUBLE_EQ(point.f64("n"), 7.0);  // ints widen to double
  EXPECT_EQ(point.str("name"), "bert");
  EXPECT_THROW((void)point.i64("frac"), u::ContractViolation);
  EXPECT_THROW((void)point.str("n"), u::ContractViolation);
  EXPECT_THROW((void)point.i64("missing"), u::ContractViolation);
  EXPECT_EQ(point.label(), "n=7 frac=0.5 name=bert");
}

TEST(SweepSpec, RejectsDuplicateAxesAndEmptyValueLists) {
  sweep::SweepSpec spec;
  spec.axis("a", std::vector<std::int64_t>{1});
  EXPECT_THROW(spec.axis("a", std::vector<std::int64_t>{2}),
               u::ContractViolation);
  EXPECT_THROW(spec.axis("b", std::vector<std::int64_t>{}),
               u::ContractViolation);
}

TEST(SweepRunner, ResultsArriveInPointOrderRegardlessOfWorkerCount) {
  std::vector<std::int64_t> items(64);
  std::iota(items.begin(), items.end(), 0);
  std::vector<std::vector<std::int64_t>> per_worker_results;
  for (std::size_t workers : {1u, 2u, 4u, 7u}) {
    sweep::SweepRunner runner(workers);
    EXPECT_EQ(runner.worker_count(), workers);
    const auto out = runner.map(items, [](std::int64_t v) {
      // Skewed cost so fast workers run dry and steal.
      if (v % 7 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return v * v;
    });
    ASSERT_EQ(out.size(), items.size());
    std::vector<std::int64_t> values;
    for (const auto& o : out) {
      ASSERT_TRUE(o.ok());
      values.push_back(o.get());
    }
    per_worker_results.push_back(std::move(values));
  }
  for (std::size_t i = 1; i < per_worker_results.size(); ++i) {
    EXPECT_EQ(per_worker_results[i], per_worker_results[0]);
  }
  for (std::size_t i = 0; i < per_worker_results[0].size(); ++i) {
    EXPECT_EQ(per_worker_results[0][i],
              static_cast<std::int64_t>(i * i));
  }
}

TEST(SweepRunner, ThrowingPointFailsThatPointOnly) {
  sweep::SweepRunner runner(3);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  const auto out = runner.map(items, [](int v) {
    if (v == 3) throw std::runtime_error("point exploded");
    if (v == 5) throw 42;  // non-std exception
    return v + 100;
  });
  ASSERT_EQ(out.size(), items.size());
  for (int v : items) {
    if (v == 3) {
      EXPECT_FALSE(out[static_cast<std::size_t>(v)].ok());
      EXPECT_EQ(out[static_cast<std::size_t>(v)].error, "point exploded");
    } else if (v == 5) {
      EXPECT_FALSE(out[static_cast<std::size_t>(v)].ok());
      EXPECT_EQ(out[static_cast<std::size_t>(v)].error, "unknown exception");
    } else {
      ASSERT_TRUE(out[static_cast<std::size_t>(v)].ok());
      EXPECT_EQ(out[static_cast<std::size_t>(v)].get(), v + 100);
    }
  }
}

TEST(SweepRunner, PoolSurvivesFailuresAcrossBatches) {
  sweep::SweepRunner runner(2);
  std::vector<int> items{1, 2, 3};
  const auto bad = runner.map(items, [](int) -> int {
    throw std::runtime_error("all points fail");
  });
  for (const auto& o : bad) EXPECT_FALSE(o.ok());
  // The pool must still drain a healthy batch afterwards.
  const auto good = runner.map(items, [](int v) { return v * 2; });
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(good[i].ok());
    EXPECT_EQ(good[i].get(), items[static_cast<std::size_t>(i)] * 2);
  }
}

TEST(SweepRunner, RunsSpecPointsDirectly) {
  sweep::SweepSpec spec;
  spec.axis("a", std::vector<std::int64_t>{1, 2, 3})
      .axis("b", std::vector<std::int64_t>{10, 20});
  sweep::SweepRunner runner(2);
  const auto out = runner.run(
      spec, [](const sweep::SweepPoint& p) { return p.i64("a") * p.i64("b"); });
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].get(), 10);
  EXPECT_EQ(out[1].get(), 20);
  EXPECT_EQ(out[5].get(), 60);
}

TEST(SweepRunner, EmptyBatchReturnsImmediately) {
  sweep::SweepRunner runner(2);
  const auto out = runner.map(std::vector<int>{}, [](int v) { return v; });
  EXPECT_TRUE(out.empty());
}

TEST(SweepRunner, ManySmallPointsKeepEveryWorkerHonest) {
  sweep::SweepRunner runner(4);
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  std::atomic<int> executed{0};
  const auto out = runner.map(items, [&executed](int v) {
    executed.fetch_add(1, std::memory_order_relaxed);
    return v;
  });
  EXPECT_EQ(executed.load(), 1000);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].get(), static_cast<int>(i));
  }
}

TEST(SweepRunner, RetriesRerunThrowingPoints) {
  sweep::SweepRunner runner(2);
  std::atomic<int> attempts{0};
  sweep::MapOptions options;
  options.retries = 3;
  const auto out = runner.map(
      std::vector<int>{7},
      [&attempts](int v) {
        // Fails twice, then succeeds: retries must re-run the point.
        if (attempts.fetch_add(1, std::memory_order_relaxed) < 2) {
          throw std::runtime_error("transient");
        }
        return v * 2;
      },
      options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_EQ(out[0].get(), 14);
  EXPECT_EQ(attempts.load(), 3);
}

TEST(SweepRunner, ExhaustedRetriesReportAttemptCount) {
  sweep::SweepRunner runner(2);
  sweep::MapOptions options;
  options.retries = 2;
  const auto out = runner.map(
      std::vector<int>{1},
      [](int) -> int { throw std::runtime_error("always broken"); },
      options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].ok());
  EXPECT_NE(out[0].error.find("failed after 3 attempts"), std::string::npos);
  EXPECT_NE(out[0].error.find("always broken"), std::string::npos);
}

TEST(SweepRunner, TimedOutPointBecomesErrorNotHang) {
  sweep::SweepRunner runner(2);
  sweep::MapOptions options;
  options.point_timeout = 0.05;
  const auto start = std::chrono::steady_clock::now();
  const auto out = runner.map(
      std::vector<int>{1, 2},
      [](int v) {
        if (v == 1) {
          // Far past the budget; the watchdog abandons the point and the
          // batch completes while this sleep is still running.
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
        return v * 10;
      },
      options);
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].ok());
  EXPECT_NE(out[0].error.find("timed out"), std::string::npos);
  EXPECT_TRUE(out[1].ok());
  EXPECT_EQ(out[1].get(), 20);
  // The batch returned on the watchdog's schedule, not the sleeper's.
  EXPECT_LT(elapsed.count(), 0.35);
}

TEST(SweepRunner, QueuedPointsDrainDespiteWedgedWorker) {
  // One worker, first point wedges it past the timeout: the replacement
  // worker must still run the queued points so the batch drains.
  sweep::SweepRunner runner(1);
  sweep::MapOptions options;
  options.point_timeout = 0.05;
  const auto out = runner.map(
      std::vector<int>{0, 1, 2, 3},
      [](int v) {
        if (v == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
        return v + 100;
      },
      options);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_FALSE(out[0].ok());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(out[i].ok()) << out[i].error;
    EXPECT_EQ(out[i].get(), static_cast<int>(i) + 100);
  }
}

TEST(SweepRunner, NextBatchIsNotStarvedByWedgedWorker) {
  // Batch 1's only worker wedges in an abandoned point; batch 2 must not
  // wait for it: run_batch restores the lost width with a replacement.
  sweep::SweepRunner runner(1);
  sweep::MapOptions options;
  options.point_timeout = 0.05;
  const auto first = runner.map(
      std::vector<int>{0},
      [](int v) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        return v;
      },
      options);
  EXPECT_FALSE(first[0].ok());

  const auto start = std::chrono::steady_clock::now();
  const auto second =
      runner.map(std::vector<int>{1, 2}, [](int v) { return v + 1; });
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].get(), 2);
  EXPECT_EQ(second[1].get(), 3);
  EXPECT_LT(elapsed.count(), 0.3);  // not the sleeper's remaining ~450ms
}

TEST(SweepCli, ParsesPointTimeoutAndRetries) {
  const char* argv[] = {"bench", "--point-timeout", "2.5", "--retries", "4"};
  const auto options = sweep::parse_cli(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.point_timeout, 2.5);
  EXPECT_EQ(options.retries, 4);
  const auto map_options = options.map_options();
  EXPECT_DOUBLE_EQ(map_options.point_timeout, 2.5);
  EXPECT_EQ(map_options.retries, 4);
}

TEST(SweepCli, ParsesWorkersCsvAndPositionals) {
  const char* argv[] = {"bench", "12288", "--workers", "8",
                        "3",     "--csv", "out.csv",   "bert"};
  const auto options =
      sweep::parse_cli(8, const_cast<char**>(argv));
  EXPECT_EQ(options.workers, 8u);
  EXPECT_EQ(options.csv_path, "out.csv");
  EXPECT_TRUE(options.csv_enabled());
  EXPECT_EQ(options.positional,
            (std::vector<std::string>{"12288", "3", "bert"}));
}

TEST(SweepCli, ParsesParallelismOverrides) {
  const char* argv[] = {"bench", "--pp", "4", "--tp", "2",
                        "--dp",  "8",    "--zero", "2"};
  const auto options = sweep::parse_cli(9, const_cast<char**>(argv));
  ASSERT_TRUE(options.parallel_overridden());
  ssdtrain::parallel::ParallelConfig parallel;
  options.apply_parallel(parallel);
  EXPECT_EQ(parallel.pipeline_parallel, 4);
  EXPECT_EQ(parallel.tensor_parallel, 2);
  EXPECT_EQ(parallel.data_parallel, 8);
  EXPECT_EQ(parallel.zero, ssdtrain::parallel::ZeroStage::stage2);

  // Unset flags leave the bench's own defaults untouched (the golden-CSV
  // compatibility contract).
  const char* partial[] = {"bench", "--dp", "2", "--zero", "stage3"};
  const auto partial_options = sweep::parse_cli(5, const_cast<char**>(partial));
  ssdtrain::parallel::ParallelConfig defaults;
  defaults.tensor_parallel = 2;
  partial_options.apply_parallel(defaults);
  EXPECT_EQ(defaults.tensor_parallel, 2);
  EXPECT_EQ(defaults.pipeline_parallel, 1);
  EXPECT_EQ(defaults.data_parallel, 2);
  EXPECT_EQ(defaults.zero, ssdtrain::parallel::ZeroStage::stage3);

  const char* bare[] = {"bench"};
  EXPECT_FALSE(sweep::parse_cli(1, const_cast<char**>(bare))
                   .parallel_overridden());

  const char* zero_degree[] = {"bench", "--pp", "0"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(zero_degree)),
               u::ContractViolation);
  const char* bad_zero[] = {"bench", "--zero", "4"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(bad_zero)),
               u::ContractViolation);
}

TEST(SweepCli, PointsFilterSelectsSingleGridCell) {
  sweep::SweepSpec spec;
  spec.axis("hidden", std::vector<std::int64_t>{8192, 12288})
      .axis("strategy", std::vector<std::string>{"keep", "ssd"})
      .axis("batch", std::vector<std::int64_t>{4, 8, 16});

  const char* argv[] = {"bench", "--points", "hidden=12288,batch=8"};
  const auto options = sweep::parse_cli(3, const_cast<char**>(argv));
  ASSERT_TRUE(options.points_enabled());
  ASSERT_EQ(options.point_filter.size(), 2u);
  EXPECT_EQ(options.point_filter[0].first, "hidden");
  EXPECT_EQ(options.point_filter[0].second, "12288");

  const auto selected = sweep::select_points(spec, options);
  ASSERT_EQ(selected.size(), 2u);  // both strategies at that cell
  for (const auto& point : selected) {
    EXPECT_EQ(point.i64("hidden"), 12288);
    EXPECT_EQ(point.i64("batch"), 8);
  }

  // Fully pinned -> exactly one cell.
  const char* one[] = {"bench", "--points",
                       "hidden=8192,strategy=ssd,batch=16"};
  const auto pinned =
      sweep::select_points(spec, sweep::parse_cli(3, const_cast<char**>(one)));
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0].str("strategy"), "ssd");
}

TEST(SweepCli, PointsFilterRepeatsAndRejectsGarbage) {
  sweep::SweepSpec spec;
  spec.axis("a", std::vector<std::int64_t>{1, 2})
      .axis("b", std::vector<std::int64_t>{10, 20});

  // Repeated --points flags accumulate constraints.
  const char* argv[] = {"bench", "--points", "a=1", "--points", "b=20"};
  const auto options = sweep::parse_cli(5, const_cast<char**>(argv));
  const auto selected = sweep::select_points(spec, options);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].i64("b"), 20);

  // No --points: the whole grid.
  const char* bare[] = {"bench"};
  EXPECT_EQ(sweep::select_points(spec,
                                 sweep::parse_cli(1, const_cast<char**>(bare)))
                .size(),
            4u);

  const char* missing_value[] = {"bench", "--points"};
  EXPECT_THROW(sweep::parse_cli(2, const_cast<char**>(missing_value)),
               u::ContractViolation);
  const char* no_eq[] = {"bench", "--points", "a1"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(no_eq)),
               u::ContractViolation);
  const char* unknown_axis[] = {"bench", "--points", "zz=1"};
  EXPECT_THROW(
      sweep::select_points(spec,
                           sweep::parse_cli(3, const_cast<char**>(unknown_axis))),
      u::ContractViolation);
  const char* no_match[] = {"bench", "--points", "a=7"};
  EXPECT_THROW(
      sweep::select_points(spec,
                           sweep::parse_cli(3, const_cast<char**>(no_match))),
      u::ContractViolation);
}

namespace {

/// Temp-file helper for the resume tests.
struct TempCsv {
  std::string path;
  explicit TempCsv(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempCsv() { std::remove(path.c_str()); }
};

}  // namespace

TEST(SweepResume, SkipsPointsAlreadyInTheCsv) {
  TempCsv tmp("sweep_resume.csv");
  sweep::SweepSpec spec;
  spec.axis("hidden", std::vector<std::int64_t>{8192, 12288})
      .axis("batch", std::vector<std::int64_t>{4, 8});

  {
    u::CsvWriter csv(tmp.path, {"hidden", "batch", "result"});
    csv.add_row({"8192", "4", "1.0"});
    csv.add_row({"12288", "8", "2.0"});
  }

  sweep::CsvResume resume(tmp.path, {"hidden", "batch"});
  EXPECT_TRUE(resume.resuming());
  EXPECT_EQ(resume.completed(), 2u);
  EXPECT_TRUE(resume.contains({"8192", "4"}));
  EXPECT_FALSE(resume.contains({"8192", "8"}));

  const auto todo = resume.remaining(spec.points());
  ASSERT_EQ(todo.size(), 2u);
  EXPECT_EQ(todo[0].i64("hidden"), 8192);
  EXPECT_EQ(todo[0].i64("batch"), 8);
  EXPECT_EQ(todo[1].i64("hidden"), 12288);
  EXPECT_EQ(todo[1].i64("batch"), 4);

  // Appending the missing rows (append mode skips the header) makes the
  // next resume see a complete grid.
  {
    u::CsvWriter csv(tmp.path, {"hidden", "batch", "result"},
                     /*append=*/true);
    csv.add_row({"8192", "8", "3.0"});
    csv.add_row({"12288", "4", "4.0"});
  }
  sweep::CsvResume done(tmp.path, {"hidden", "batch"});
  EXPECT_EQ(done.completed(), 4u);
  EXPECT_TRUE(done.remaining(spec.points()).empty());

  std::ifstream in(tmp.path);
  std::string line;
  std::size_t headers = 0, lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.rfind("hidden,", 0) == 0) ++headers;
  }
  EXPECT_EQ(headers, 1u);  // append mode did not duplicate the header
  EXPECT_EQ(lines, 5u);
}

TEST(SweepResume, TruncatedTailRowIsNotTreatedAsCompleted) {
  TempCsv tmp("sweep_resume_truncated.csv");
  {
    // A run killed mid-write: the final row has its key cells but not the
    // metric column, and no trailing newline.
    std::ofstream out(tmp.path);
    out << "hidden,batch,result\n";
    out << "8192,4,1.0\n";
    out << "8192,8";  // unterminated partial row
  }
  sweep::CsvResume resume(tmp.path, {"hidden", "batch"});
  EXPECT_EQ(resume.completed(), 1u);
  EXPECT_TRUE(resume.contains({"8192", "4"}));
  EXPECT_FALSE(resume.contains({"8192", "8"}));  // must be re-run

  // Appending truncates the torn tail away before writing, so the repaired
  // file is byte-identical to one a clean run would have produced.
  {
    u::CsvWriter csv(tmp.path, {"hidden", "batch", "result"},
                     /*append=*/true);
    csv.add_row({"8192", "8", "2.0"});
  }
  std::ifstream in(tmp.path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "hidden,batch,result\n8192,4,1.0\n8192,8,2.0\n");
}

TEST(SweepResume, TruncatedFinalCellIsNotTreatedAsCompleted) {
  // The nastier mid-write kill: the tail row carries the header's full
  // comma count with only its last cell truncated ("2." of "2.75") and no
  // trailing newline. A getline-based scan sees a complete-looking row and
  // would skip the interrupted point forever — the regression this test
  // pins down.
  TempCsv tmp("sweep_resume_truncated_cell.csv");
  {
    std::ofstream out(tmp.path, std::ios::binary);
    out << "hidden,batch,result\n";
    out << "8192,4,1.0\n";
    out << "8192,8,2.";  // killed mid-metric, right comma count
  }
  sweep::CsvResume resume(tmp.path, {"hidden", "batch"});
  EXPECT_EQ(resume.completed(), 1u);
  EXPECT_TRUE(resume.contains({"8192", "4"}));
  EXPECT_FALSE(resume.contains({"8192", "8"}));  // must be re-run

  // Re-running the point repairs the file to the clean-run bytes.
  {
    u::CsvWriter csv(tmp.path, {"hidden", "batch", "result"},
                     /*append=*/true);
    csv.add_row({"8192", "8", "2.75"});
  }
  std::ifstream in(tmp.path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "hidden,batch,result\n8192,4,1.0\n8192,8,2.75\n");
}

TEST(SweepResume, FileTruncatedInsideHeaderStartsFresh) {
  TempCsv tmp("sweep_resume_torn_header.csv");
  {
    std::ofstream out(tmp.path, std::ios::binary);
    out << "hidden,bat";  // killed while writing the header itself
  }
  sweep::CsvResume resume(tmp.path, {"hidden", "batch"});
  EXPECT_FALSE(resume.resuming());
  EXPECT_EQ(resume.completed(), 0u);

  {
    u::CsvWriter csv(tmp.path, {"hidden", "batch", "result"},
                     /*append=*/true);
    csv.add_row({"8192", "4", "1.0"});
  }
  std::ifstream in(tmp.path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "hidden,batch,result\n8192,4,1.0\n");
}

TEST(SweepResume, MissingFileMeansNothingToSkip) {
  TempCsv tmp("sweep_resume_missing.csv");
  sweep::CsvResume resume(tmp.path, {"a"});
  EXPECT_FALSE(resume.resuming());
  EXPECT_EQ(resume.completed(), 0u);
  sweep::SweepSpec spec;
  spec.axis("a", std::vector<std::int64_t>{1, 2, 3});
  EXPECT_EQ(resume.remaining(spec.points()).size(), 3u);
}

TEST(SweepResume, RefusesForeignCsvAndParsesQuotedCells) {
  TempCsv tmp("sweep_resume_foreign.csv");
  {
    u::CsvWriter csv(tmp.path, {"other", "columns"});
    csv.add_row({"1", "2"});
  }
  EXPECT_THROW(sweep::CsvResume(tmp.path, {"hidden", "batch"}),
               u::ContractViolation);

  EXPECT_EQ(sweep::split_csv_line("a,\"b,c\",\"d\"\"e\""),
            (std::vector<std::string>{"a", "b,c", "d\"e"}));
}

TEST(SweepCli, DefaultsAndErrors) {
  const char* bare[] = {"bench"};
  const auto defaults = sweep::parse_cli(1, const_cast<char**>(bare));
  EXPECT_EQ(defaults.workers, 0u);
  EXPECT_FALSE(defaults.csv_enabled());
  EXPECT_TRUE(defaults.positional.empty());

  const char* missing[] = {"bench", "--workers"};
  EXPECT_THROW(sweep::parse_cli(2, const_cast<char**>(missing)),
               u::ContractViolation);
  const char* garbage[] = {"bench", "--workers", "eight"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(garbage)),
               u::ContractViolation);
  const char* trailing[] = {"bench", "--workers", "4x"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(trailing)),
               u::ContractViolation);
  const char* unknown[] = {"bench", "--frobnicate"};
  EXPECT_THROW(sweep::parse_cli(2, const_cast<char**>(unknown)),
               u::ContractViolation);
}

TEST(SweepCli, ParsesShardAndProgramCacheFlags) {
  const char* argv[] = {"bench", "--shard", "1/4", "--program-cache",
                        "/tmp/progs"};
  const auto options = sweep::parse_cli(5, const_cast<char**>(argv));
  EXPECT_EQ(options.shard_index, 1);
  EXPECT_EQ(options.shard_count, 4);
  EXPECT_TRUE(options.sharded());
  EXPECT_EQ(options.program_cache_dir, "/tmp/progs");
  EXPECT_TRUE(options.program_cache_enabled());

  const char* off[] = {"bench", "--no-program-cache"};
  const auto disabled = sweep::parse_cli(2, const_cast<char**>(off));
  EXPECT_FALSE(disabled.program_cache_enabled());
  EXPECT_FALSE(disabled.sharded());

  const char* out_of_range[] = {"bench", "--shard", "2/2"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(out_of_range)),
               u::ContractViolation);
  const char* garbage[] = {"bench", "--shard", "x/2"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(garbage)),
               u::ContractViolation);
  const char* no_slash[] = {"bench", "--shard", "1"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(no_slash)),
               u::ContractViolation);
  const char* negative[] = {"bench", "--shard", "-1/2"};
  EXPECT_THROW(sweep::parse_cli(3, const_cast<char**>(negative)),
               u::ContractViolation);
}

TEST(SweepCli, ShardPartitionsTheSelectionRoundRobin) {
  sweep::SweepSpec spec;
  spec.axis("a", std::vector<std::int64_t>{0, 1, 2, 3, 4});

  // Position j of the selection belongs to shard j mod N, order preserved.
  const char* argv0[] = {"bench", "--shard", "0/2"};
  const auto shard0 = sweep::select_points(
      spec, sweep::parse_cli(3, const_cast<char**>(argv0)));
  ASSERT_EQ(shard0.size(), 3u);
  EXPECT_EQ(shard0[0].i64("a"), 0);
  EXPECT_EQ(shard0[1].i64("a"), 2);
  EXPECT_EQ(shard0[2].i64("a"), 4);

  const char* argv1[] = {"bench", "--shard", "1/2"};
  const auto shard1 = sweep::select_points(
      spec, sweep::parse_cli(3, const_cast<char**>(argv1)));
  ASSERT_EQ(shard1.size(), 2u);
  EXPECT_EQ(shard1[0].i64("a"), 1);
  EXPECT_EQ(shard1[1].i64("a"), 3);

  // Round-robin interleave (sweep_merge's algorithm) restores the
  // canonical single-process order exactly.
  std::vector<std::int64_t> merged;
  for (std::size_t round = 0;; ++round) {
    bool any = false;
    for (const auto* shard : {&shard0, &shard1}) {
      if (round >= shard->size()) continue;
      merged.push_back((*shard)[round].i64("a"));
      any = true;
    }
    if (!any) break;
  }
  EXPECT_EQ(merged, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));

  // More shards than points: the excess shard is legitimately empty.
  const char* argv7[] = {"bench", "--shard", "6/7"};
  EXPECT_TRUE(sweep::select_points(
                  spec, sweep::parse_cli(3, const_cast<char**>(argv7)))
                  .empty());

  // Sharding composes with --points: the filter applies first.
  const char* filtered[] = {"bench", "--points", "a=3", "--shard", "0/2"};
  const auto only = sweep::select_points(
      spec, sweep::parse_cli(5, const_cast<char**>(filtered)));
  ASSERT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0].i64("a"), 3);
}
