// Tests for the tensor runtime: shapes, storages, RAII memory reclamation,
// views, weak references, and the paper's get_id deduplication scheme
// (§III-C1).

#include <gtest/gtest.h>

#include "ssdtrain/hw/device_allocator.hpp"
#include "ssdtrain/tensor/tensor.hpp"
#include "ssdtrain/tensor/tensor_id.hpp"
#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/units.hpp"

namespace t = ssdtrain::tensor;
namespace hw = ssdtrain::hw;
namespace u = ssdtrain::util;

namespace {

class TensorTest : public ::testing::Test {
 protected:
  hw::DeviceAllocator allocator_{u::gib(8)};
  t::TensorFactory factory_{allocator_};
};

}  // namespace

TEST_F(TensorTest, ShapeBasics) {
  t::TensorShape shape{1024, 16, 12288};
  EXPECT_EQ(shape.rank(), 3u);
  EXPECT_EQ(shape.numel(), 1024LL * 16 * 12288);
  EXPECT_EQ(shape.to_string(), "[1024, 16, 12288]");
  EXPECT_EQ(shape.transposed(), (t::TensorShape{1024, 12288, 16}));
}

TEST_F(TensorTest, ShapeHashDistinguishesShapes) {
  t::TensorShape a{128, 256};
  t::TensorShape b{256, 128};
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), t::TensorShape({128, 256}).hash());
}

TEST_F(TensorTest, DtypeSizes) {
  EXPECT_EQ(t::element_size(t::DType::fp16), 2);
  EXPECT_EQ(t::element_size(t::DType::fp32), 4);
  EXPECT_EQ(t::element_size(t::DType::int8), 1);
  EXPECT_EQ(t::element_size(t::DType::int64), 8);
}

TEST_F(TensorTest, DeviceTensorChargesAllocator) {
  const auto before = allocator_.live(hw::MemoryTag::activation);
  {
    auto x = factory_.cuda("x", {1024, 16, 128}, t::DType::fp16,
                           hw::MemoryTag::activation);
    EXPECT_EQ(x.bytes(), 1024LL * 16 * 128 * 2);
    EXPECT_GE(allocator_.live(hw::MemoryTag::activation),
              before + x.bytes());
    EXPECT_FALSE(x.is_cpu());
  }
  // RAII: dropping the last handle reclaims device memory (the Python GC
  // analogue the tensor cache relies on).
  EXPECT_EQ(allocator_.live(hw::MemoryTag::activation), before);
}

TEST_F(TensorTest, ViewsShareStorageAndKeepMemoryAlive) {
  auto w = factory_.cuda("w", {512, 256}, t::DType::fp16,
                         hw::MemoryTag::weights);
  auto wt = w.transpose_view();
  EXPECT_TRUE(same_storage(w, wt));
  EXPECT_EQ(wt.shape(), (t::TensorShape{256, 512}));
  const auto live = allocator_.live(hw::MemoryTag::weights);
  w.reset();
  // The view still pins the storage.
  EXPECT_EQ(allocator_.live(hw::MemoryTag::weights), live);
  wt.reset();
  EXPECT_EQ(allocator_.live(hw::MemoryTag::weights), 0);
}

TEST_F(TensorTest, CpuTensorIsNotDeviceTracked) {
  const auto before = allocator_.live_total();
  auto ids = factory_.cpu("ids", {1024, 16}, t::DType::int32);
  EXPECT_TRUE(ids.is_cpu());
  EXPECT_EQ(allocator_.live_total(), before);
}

TEST_F(TensorTest, WeakTensorLockAndExpiry) {
  t::WeakTensor weak;
  {
    auto x = factory_.cuda("x", {1 << 20}, t::DType::fp16,
                           hw::MemoryTag::activation);
    weak = t::WeakTensor(x);
    auto strong = weak.lock();
    EXPECT_TRUE(strong.defined());
    EXPECT_TRUE(same_storage(strong, x));
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
  EXPECT_FALSE(weak.lock().defined());
}

TEST_F(TensorTest, GetIdStableAcrossCalls) {
  t::IdAssigner ids;
  auto x = factory_.cuda("x", {1024, 16, 128}, t::DType::fp16,
                         hw::MemoryTag::activation);
  const auto id1 = ids.get_id(x);
  const auto id2 = ids.get_id(x);
  EXPECT_EQ(id1, id2);
}

TEST_F(TensorTest, GetIdDistinguishesDifferentTensors) {
  t::IdAssigner ids;
  auto x = factory_.cuda("x", {1024, 16, 128}, t::DType::fp16,
                         hw::MemoryTag::activation);
  auto y = factory_.cuda("y", {1024, 16, 128}, t::DType::fp16,
                         hw::MemoryTag::activation);
  EXPECT_NE(ids.get_id(x), ids.get_id(y));
}

TEST_F(TensorTest, GetIdSurvivesAddressReuse) {
  // The failure mode of PyTorch's id(): freeing a tensor and allocating a
  // same-sized one may reuse the GPU address. get_id must not collide.
  t::IdAssigner ids;
  t::TensorId first_id;
  {
    auto x = factory_.cuda("x", {1 << 20}, t::DType::fp16,
                           hw::MemoryTag::activation);
    first_id = ids.get_id(x);
  }
  auto y = factory_.cuda("y", {1 << 20}, t::DType::fp16,
                         hw::MemoryTag::activation);
  EXPECT_NE(ids.get_id(y), first_id);
}

TEST_F(TensorTest, ViewsOfSameStorageShareStampButNotId) {
  // New torch.Tensor objects representing the same data deduplicate via the
  // storage stamp; the transpose (different shape) gets its own id, stable
  // across steps.
  t::IdAssigner ids;
  auto w = factory_.cuda("w", {512, 256}, t::DType::fp16,
                         hw::MemoryTag::weights);
  const auto id_w = ids.get_id(w);
  const auto id_wt = ids.get_id(w.transpose_view());
  EXPECT_EQ(id_w.stamp, id_wt.stamp);
  EXPECT_NE(id_w, id_wt);
  // A second transpose view (a fresh Tensor object) maps to the same id.
  EXPECT_EQ(ids.get_id(w.transpose_view()), id_wt);
}

TEST_F(TensorTest, SameShapedViewDeduplicates) {
  t::IdAssigner ids;
  auto x = factory_.cuda("x", {64, 64}, t::DType::fp16,
                         hw::MemoryTag::activation);
  t::Tensor same("x2", x.shape(), x.dtype(), x.storage());
  EXPECT_EQ(ids.get_id(x), ids.get_id(same));
}

TEST_F(TensorTest, IdToStringIsFilenameFriendly) {
  t::IdAssigner ids;
  auto x = factory_.cuda("x", {64}, t::DType::fp16,
                         hw::MemoryTag::activation);
  const auto str = ids.get_id(x).to_string();
  EXPECT_EQ(str.find('/'), std::string::npos);
  EXPECT_EQ(str.find(' '), std::string::npos);
  EXPECT_EQ(str.front(), 't');
}

TEST_F(TensorTest, UndefinedTensorRejectsAccess) {
  t::Tensor undefined;
  EXPECT_FALSE(undefined.defined());
  EXPECT_THROW((void)undefined.shape(), u::ContractViolation);
  EXPECT_THROW((void)undefined.bytes(), u::ContractViolation);
}

TEST_F(TensorTest, OomPropagates) {
  EXPECT_THROW(factory_.cuda("huge", {u::gib(16)}, t::DType::fp16,
                             hw::MemoryTag::activation),
               hw::OutOfDeviceMemory);
}
