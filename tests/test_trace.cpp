// Tests for the Chrome-trace exporter: event capture from streams, JSON
// structure, and file output.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ssdtrain/sim/simulator.hpp"
#include "ssdtrain/sim/stream.hpp"
#include "ssdtrain/trace/chrome_trace.hpp"

namespace sim = ssdtrain::sim;
namespace trace = ssdtrain::trace;

TEST(ChromeTrace, CapturesStreamTasks) {
  sim::Simulator s;
  sim::Stream stream(s, "gpu");
  trace::ChromeTrace tracer;
  tracer.attach_stream(stream, "GPU compute");
  stream.enqueue("gemm", 1.0);
  stream.enqueue("flash", 0.5);
  s.run();
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].name, "gemm");
  EXPECT_DOUBLE_EQ(tracer.events()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(tracer.events()[0].end, 1.0);
  EXPECT_DOUBLE_EQ(tracer.events()[1].end, 1.5);
}

TEST(ChromeTrace, JsonHasDurationEventsAndTrackNames) {
  sim::Simulator s;
  sim::Stream compute(s, "gpu");
  sim::Stream io(s, "io");
  trace::ChromeTrace tracer;
  tracer.attach_stream(compute, "GPU compute");
  tracer.attach_stream(io, "SSD I/O");
  compute.enqueue("k", 1.0);
  io.enqueue("store", 2.0);
  s.run();

  const std::string json = tracer.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph": "X")"), std::string::npos);
  EXPECT_NE(json.find(R"("name": "k")"), std::string::npos);
  EXPECT_NE(json.find(R"("name": "store")"), std::string::npos);
  EXPECT_NE(json.find("GPU compute"), std::string::npos);
  EXPECT_NE(json.find("SSD I/O"), std::string::npos);
  // Distinct tracks get distinct tids.
  EXPECT_NE(json.find(R"("tid": 0)"), std::string::npos);
  EXPECT_NE(json.find(R"("tid": 1)"), std::string::npos);
}

TEST(ChromeTrace, MicrosecondTimestamps) {
  sim::Simulator s;
  sim::Stream stream(s, "gpu");
  trace::ChromeTrace tracer;
  tracer.attach_stream(stream, "t");
  stream.enqueue("k", 0.0015);  // 1.5 ms = 1500 us
  s.run();
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find(R"("dur": 1500)"), std::string::npos);
}

TEST(ChromeTrace, WritesFile) {
  trace::ChromeTrace tracer;
  tracer.add_event({"manual", "track", 0.0, 1.0});
  const std::string path = "/tmp/ssdtrain_test_trace.json";
  tracer.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("manual"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeTrace, WriteToBadPathThrows) {
  trace::ChromeTrace tracer;
  EXPECT_THROW(tracer.write("/nonexistent-dir/trace.json"),
               std::runtime_error);
}
