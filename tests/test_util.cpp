// Unit tests for ssdtrain/util: contracts, units/formatting, RNG, stats,
// table and CSV writers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ssdtrain/util/check.hpp"
#include "ssdtrain/util/csv.hpp"
#include "ssdtrain/util/rng.hpp"
#include "ssdtrain/util/stats.hpp"
#include "ssdtrain/util/table.hpp"
#include "ssdtrain/util/units.hpp"

namespace u = ssdtrain::util;

TEST(Check, ExpectsThrowsOnFalse) {
  EXPECT_THROW(u::expects(false, "boom"), u::ContractViolation);
  EXPECT_NO_THROW(u::expects(true));
}

TEST(Check, EnsuresAndCheckThrowOnFalse) {
  EXPECT_THROW(u::ensures(false), u::ContractViolation);
  EXPECT_THROW(u::check(false), u::ContractViolation);
  EXPECT_THROW(u::unreachable(), u::ContractViolation);
}

TEST(Check, MessageContainsLocation) {
  try {
    u::expects(false, "custom message");
    FAIL() << "should have thrown";
  } catch (const u::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Units, BinaryAndDecimalSizes) {
  EXPECT_EQ(u::kib(1), 1024);
  EXPECT_EQ(u::mib(1), 1024 * 1024);
  EXPECT_EQ(u::gib(2), 2LL * 1024 * 1024 * 1024);
  EXPECT_EQ(u::gb(1), 1'000'000'000);
  EXPECT_EQ(u::tb(1.6), 1'600'000'000'000LL);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(u::ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(u::us(1), 1e-6);
  EXPECT_DOUBLE_EQ(u::years(1), 86400.0 * 365.25);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(u::format_bytes(12.85e9), "12.85 GB");
  EXPECT_EQ(u::format_bytes(999.0), "999.00 B");
  EXPECT_EQ(u::format_bytes_binary(1024.0 * 1024.0), "1.00 MiB");
}

TEST(Units, FormatBandwidthAndTime) {
  EXPECT_EQ(u::format_bandwidth(u::gbps(18.0)), "18.00 GB/s");
  EXPECT_EQ(u::format_time(u::ms(1234.5)), "1.234 s");
  EXPECT_EQ(u::format_time(u::ms(85.25)), "85.25 ms");
}

TEST(Units, FormatDurationLong) {
  EXPECT_EQ(u::format_duration_long(u::years(2.31)), "2.31 years");
  EXPECT_EQ(u::format_duration_long(u::days(45.0)), "45.0 days");
}

TEST(Units, FormatPercent) {
  EXPECT_EQ(u::format_percent(-0.472), "-47.2%");
  EXPECT_EQ(u::format_percent(0.05, 0), "5%");
}

TEST(Rng, DeterministicAcrossInstances) {
  u::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  u::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  u::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntBounded) {
  u::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversRange) {
  u::Xoshiro256 rng(9);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform_int(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Stats, RunningStatMoments) {
  u::RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(u::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(u::percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(u::percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(u::percentile(v, 25), 2.0);
}

TEST(Stats, PercentileRejectsEmpty) {
  EXPECT_THROW(u::percentile({}, 50), u::ContractViolation);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 1.5);
  }
  const auto fit = u::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.5, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, ExponentialFitRecoversGrowthRate) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * std::exp(0.7 * i));
  }
  const auto fit = u::exponential_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.7, 1e-10);
  EXPECT_NEAR(u::doubling_time(fit.slope), std::log(2.0) / 0.7, 1e-10);
}

TEST(Table, RendersAlignedCells) {
  u::AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  u::AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), u::ContractViolation);
}

TEST(Csv, WritesEscapedCells) {
  const std::string path = "/tmp/ssdtrain_test_csv.csv";
  {
    u::CsvWriter w(path, {"a", "b"});
    w.add_row({"plain", "with,comma"});
    w.add_row({"with\"quote", "x"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\",x\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongWidth) {
  const std::string path = "/tmp/ssdtrain_test_csv2.csv";
  u::CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"x"}), u::ContractViolation);
  w.close();
  std::remove(path.c_str());
}
