// Tests for the WorkloadSpec layer-composition abstraction: spec
// validation, the property that the per-LayerSpec activation fold is
// bit-identical to the paper's legacy closed forms across the BERT/GPT/T5
// hidden x layers grid, frozen pre-refactor planner goldens, MoE
// monotonicity (bytes grow with top_k, shrink with expert parallelism),
// GQA shrinkage, and the per-layer byte profile the planner consumes.

#include <gtest/gtest.h>

#include <cmath>

#include "ssdtrain/analysis/activation_model.hpp"
#include "ssdtrain/analysis/perf_model.hpp"
#include "ssdtrain/core/planner.hpp"
#include "ssdtrain/hw/catalog.hpp"
#include "ssdtrain/hw/device_allocator.hpp"
#include "ssdtrain/modules/model.hpp"
#include "ssdtrain/modules/transformer.hpp"
#include "ssdtrain/util/units.hpp"
#include "ssdtrain/workload/spec.hpp"
#include "test_support.hpp"

namespace a = ssdtrain::analysis;
namespace core = ssdtrain::core;
namespace hw = ssdtrain::hw;
namespace m = ssdtrain::modules;
namespace p = ssdtrain::parallel;
namespace u = ssdtrain::util;
namespace w = ssdtrain::workload;
using ssdtrain::testing::TestContext;

// ---------------------------------------------------------------------------
// Spec construction and validation
// ---------------------------------------------------------------------------

TEST(WorkloadSpec, FactoriesDescribeThePaperArchitectures) {
  const auto bert = m::bert_config(8192, 4, 16);
  ASSERT_EQ(bert.workload.layers.size(), 1u);
  EXPECT_EQ(bert.workload.total_layers(), 4);
  EXPECT_FALSE(bert.workload.layers[0].attention.causal);
  EXPECT_FALSE(bert.workload.decoder_only);
  EXPECT_FALSE(bert.workload.has_cross_attention());

  const auto gpt = m::gpt_config(8192, 4, 16);
  EXPECT_TRUE(gpt.workload.layers[0].attention.causal);
  EXPECT_TRUE(gpt.workload.decoder_only);

  const auto t5 = m::t5_config(8192, 5, 16);
  ASSERT_EQ(t5.workload.layers.size(), 2u);
  EXPECT_EQ(t5.workload.layers[0].count, 3);  // encoders = layers - dec
  EXPECT_EQ(t5.workload.layers[1].count, 2);  // decoders = floor(layers/2)
  EXPECT_TRUE(t5.workload.layers[1].attention.cross_attention);
  EXPECT_TRUE(t5.workload.has_cross_attention());

  const auto moe = m::gpt_moe_config(8192, 4, 16, 32, 2, 4, 1.25);
  const w::FfnSpec& ffn = moe.workload.layers[0].ffn;
  EXPECT_TRUE(ffn.moe());
  EXPECT_EQ(ffn.num_experts, 32);
  EXPECT_DOUBLE_EQ(ffn.effective_load(), 2.0 * 1.25 / 4.0);
  EXPECT_TRUE(moe.workload.has_moe());

  const auto gqa = m::gpt_gqa_config(8192, 4, 16);
  EXPECT_EQ(gqa.workload.layers[0].attention.kv_heads, 8);  // 64 heads / 8
  EXPECT_TRUE(gqa.workload.layers[0].attention.grouped_query(gqa.heads));
}

TEST(WorkloadSpec, ValidationRejectsMalformedSpecs) {
  auto cfg = m::gpt_config(4096, 2, 4);
  // kv_heads must divide the query heads (32 here).
  cfg.workload.layers[0].attention.kv_heads = 5;
  EXPECT_THROW((void)cfg.resolved_workload(), u::ContractViolation);
  cfg = m::gpt_moe_config(4096, 2, 4, 8, 2);
  cfg.workload.layers[0].ffn.top_k = 9;  // > num_experts
  EXPECT_THROW((void)cfg.resolved_workload(), u::ContractViolation);
  cfg = m::gpt_moe_config(4096, 2, 4, 8, 2);
  cfg.workload.layers[0].ffn.expert_parallel = 3;  // does not divide 8
  EXPECT_THROW((void)cfg.resolved_workload(), u::ContractViolation);
  // A cross-attention group with nothing producing the shared memory.
  cfg = m::gpt_config(4096, 2, 4);
  cfg.workload.layers[0].attention.cross_attention = true;
  EXPECT_THROW((void)cfg.resolved_workload(), u::ContractViolation);
  // Encoder groups interleaved after a decoder group would execute out of
  // declared order (the enc/dec topology buckets them): rejected.
  cfg = m::t5_config(4096, 3, 4);
  cfg.layers = 4;
  w::LayerSpec trailing_encoder;
  trailing_encoder.label = "encoder";
  trailing_encoder.count = 1;
  cfg.workload.layers.push_back(trailing_encoder);
  EXPECT_THROW((void)cfg.resolved_workload(), u::ContractViolation);
  // Counts must agree with ModelConfig::layers.
  cfg = m::gpt_config(4096, 2, 4);
  cfg.layers = 3;
  EXPECT_THROW((void)cfg.resolved_workload(), u::ContractViolation);
}

TEST(WorkloadSpec, EmptySpecResolvesToBidirectionalDenseStack) {
  m::ModelConfig cfg;
  cfg.hidden = 2048;
  cfg.heads = 16;
  cfg.layers = 3;
  const w::WorkloadSpec spec = cfg.resolved_workload();
  ASSERT_EQ(spec.layers.size(), 1u);
  EXPECT_EQ(spec.layers[0].count, 3);
  EXPECT_FALSE(spec.layers[0].attention.causal);
  EXPECT_FALSE(spec.layers[0].ffn.moe());
}

// ---------------------------------------------------------------------------
// Legacy equivalence: the per-LayerSpec fold must reproduce the paper's
// closed forms bit-for-bit across the evaluation grid.
// ---------------------------------------------------------------------------

namespace {

/// The pre-refactor closed forms, verbatim (arch-switch era).
double legacy_sbh(const m::ModelConfig& mdl) {
  return static_cast<double>(mdl.seq) *
         static_cast<double>(mdl.micro_batch) *
         static_cast<double>(mdl.hidden);
}

u::Bytes legacy_layer_bytes(const m::ModelConfig& mdl,
                            const p::ParallelConfig& par) {
  const auto t = static_cast<double>(par.tensor_parallel);
  double bytes = par.sequence_parallel
                     ? legacy_sbh(mdl) * 34.0 / t
                     : legacy_sbh(mdl) * (10.0 + 24.0 / t);
  if (!mdl.flash_attention) {
    bytes += 5.0 * static_cast<double>(mdl.heads) *
             static_cast<double>(mdl.seq) * static_cast<double>(mdl.seq) *
             static_cast<double>(mdl.micro_batch) / t;
  }
  return static_cast<u::Bytes>(bytes);
}

u::Bytes legacy_decoder_extra(const m::ModelConfig& mdl,
                              const p::ParallelConfig& par) {
  const auto t = static_cast<double>(par.tensor_parallel);
  const double bytes = par.sequence_parallel
                           ? legacy_sbh(mdl) * 13.0 / t
                           : legacy_sbh(mdl) * (5.0 + 8.0 / t);
  return static_cast<u::Bytes>(bytes);
}

u::Bytes legacy_model_bytes(const m::ModelConfig& mdl,
                            const p::ParallelConfig& par, bool is_t5) {
  u::Bytes total = 0;
  if (is_t5) {
    const int decoders = mdl.layers / 2;
    const int encoders = mdl.layers - decoders;
    total += encoders * legacy_layer_bytes(mdl, par);
    total += decoders *
             (legacy_layer_bytes(mdl, par) + legacy_decoder_extra(mdl, par));
    total += static_cast<u::Bytes>(2.0 * legacy_sbh(mdl));
  } else {
    total += mdl.layers * legacy_layer_bytes(mdl, par);
  }
  total += static_cast<u::Bytes>(2.0 * legacy_sbh(mdl));
  return total;
}

u::Bytes legacy_offloadable(const m::ModelConfig& mdl,
                            const p::ParallelConfig& par, bool is_t5) {
  const auto t = static_cast<double>(par.tensor_parallel);
  const double kept_units =
      par.sequence_parallel ? 19.0 / t : 3.0 + 16.0 / t;
  const auto kept = static_cast<u::Bytes>(kept_units * legacy_sbh(mdl));
  return legacy_model_bytes(mdl, par, is_t5) - kept;
}

}  // namespace

TEST(WorkloadLegacyEquivalence, ActivationSumsAreBitIdenticalOnPaperGrid) {
  using Factory = m::ModelConfig (*)(std::int64_t, int, std::int64_t);
  const Factory factories[] = {&m::bert_config, &m::gpt_config,
                               &m::t5_config};
  const std::int64_t hiddens[] = {4096, 8192, 12288, 14336, 16384};
  const int layer_counts[] = {2, 3, 4, 5};
  const std::int64_t batches[] = {4, 16};
  struct Par {
    int tp;
    bool sp;
  };
  const Par pars[] = {{1, false}, {2, false}, {4, false}, {8, true}};

  for (Factory make : factories) {
    for (std::int64_t hidden : hiddens) {
      for (int layers : layer_counts) {
        for (std::int64_t batch : batches) {
          for (bool flash : {true, false}) {
            auto cfg = make(hidden, layers, batch);
            cfg.flash_attention = flash;
            const bool is_t5 = cfg.workload.has_cross_attention();
            for (const Par& par : pars) {
              p::ParallelConfig parallel;
              parallel.tensor_parallel = par.tp;
              parallel.sequence_parallel = par.sp;
              ASSERT_EQ(a::layer_activation_bytes(cfg, parallel),
                        legacy_layer_bytes(cfg, parallel))
                  << cfg.name << " H" << hidden << " L" << layers;
              ASSERT_EQ(a::decoder_extra_activation_bytes(cfg, parallel),
                        legacy_decoder_extra(cfg, parallel))
                  << cfg.name << " H" << hidden << " L" << layers;
              ASSERT_EQ(a::model_activation_bytes(cfg, parallel),
                        legacy_model_bytes(cfg, parallel, is_t5))
                  << cfg.name << " H" << hidden << " L" << layers;
              ASSERT_EQ(a::offloadable_activation_bytes(cfg, parallel),
                        legacy_offloadable(cfg, parallel, is_t5))
                  << cfg.name << " H" << hidden << " L" << layers;
            }
          }
        }
      }
    }
  }
}

// Frozen pre-refactor planner outputs (captured on the seed tree): the
// whole OffloadPlan — including the floating-point step estimate, down to
// the bit via hexfloat literals — must survive the WorkloadSpec refactor.
TEST(WorkloadLegacyEquivalence, PlannerGoldensAreBitIdentical) {
  struct Golden {
    m::ModelConfig (*make)(std::int64_t, int, std::int64_t);
    std::int64_t hidden;
    int layers;
    u::Bytes act, off, window, budget;
    double step, required;
  };
  const Golden goldens[] = {
      {&m::bert_config, 8192, 2, 12348030976, 9395240960, 5742165095,
       5742165095, 0x1.3f90605f2d82p+0, 0x1.c09c7c772fb89p+33},
      {&m::gpt_config, 12288, 3, 27380416512, 22951231488, 17335237200,
       17335237200, 0x1.e25f2f72c5cfep+1, 0x1.6b019baed636cp+33},
      {&m::t5_config, 16384, 4, 59055800320, 53150220288, 43662497168,
       43662497168, 0x1.2fbd365c806d9p+3, 0x1.4dc296c844699p+33},
  };
  for (const Golden& g : goldens) {
    core::PlannerInputs in;
    in.model = g.make(g.hidden, g.layers, 16);
    in.parallel.tensor_parallel = 2;
    in.gpu = hw::catalog::table2_evaluation_node().gpu;
    in.target_write_bandwidth = 1.0e10;
    in.micro_batches = 2;
    const core::OffloadPlan plan = core::plan_offload(in);
    EXPECT_EQ(plan.activation_bytes_per_step, g.act) << in.model.name;
    EXPECT_EQ(plan.offloadable_bytes_per_step, g.off) << in.model.name;
    EXPECT_EQ(plan.io_window_bytes, g.window) << in.model.name;
    EXPECT_EQ(plan.offload_budget, g.budget) << in.model.name;
    EXPECT_EQ(plan.step_time_estimate, g.step) << in.model.name;
    EXPECT_EQ(plan.required_write_bandwidth, g.required) << in.model.name;
    EXPECT_FALSE(plan.fully_offloadable) << in.model.name;
  }
}

// ---------------------------------------------------------------------------
// MoE and GQA closed-form behaviour
// ---------------------------------------------------------------------------

TEST(WorkloadMoe, BytesGrowWithTopK) {
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  u::Bytes last = 0;
  for (int top_k : {1, 2, 4, 8}) {
    const auto cfg = m::gpt_moe_config(8192, 3, 8, 8, top_k);
    const u::Bytes bytes = a::model_activation_bytes(cfg, tp2);
    EXPECT_GT(bytes, last) << "top_k=" << top_k;
    last = bytes;
  }
  // The dense GPT stack lower-bounds the MoE one: top_k=1/capacity=1 adds
  // only the router-input stream on top of the dense FFN bytes.
  EXPECT_GT(a::model_activation_bytes(m::gpt_moe_config(8192, 3, 8, 8, 1),
                                      tp2),
            a::model_activation_bytes(m::gpt_config(8192, 3, 8), tp2));
}

TEST(WorkloadMoe, BytesShrinkWithExpertParallelism) {
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  u::Bytes last = 0;
  for (int ep : {8, 4, 2, 1}) {  // shrinking EP -> growing per-GPU bytes
    const auto cfg = m::gpt_moe_config(8192, 3, 8, 8, 4, ep);
    const u::Bytes bytes = a::model_activation_bytes(cfg, tp2);
    EXPECT_GT(bytes, last) << "ep=" << ep;
    last = bytes;
  }
}

TEST(WorkloadMoe, CapacityFactorInflatesTheRoutedStream) {
  p::ParallelConfig tp1;
  const auto base = m::gpt_moe_config(8192, 3, 8, 8, 2, 1, 1.0);
  const auto inflated = m::gpt_moe_config(8192, 3, 8, 8, 2, 1, 1.5);
  EXPECT_GT(a::model_activation_bytes(inflated, tp1),
            a::model_activation_bytes(base, tp1));
}

TEST(WorkloadGqa, SavedBytesShrinkWithFewerKvHeads) {
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  const auto mha = m::gpt_config(8192, 3, 8);
  u::Bytes last = a::model_activation_bytes(mha, tp2);
  for (std::int64_t kv : {32, 16, 8, 4, 2}) {  // 64 query heads
    const auto cfg = m::gpt_gqa_config(8192, 3, 8, kv);
    const u::Bytes bytes = a::model_activation_bytes(cfg, tp2);
    EXPECT_LT(bytes, last) << "kv_heads=" << kv;
    last = bytes;
  }
  // kv_heads == heads degenerates to MHA exactly.
  EXPECT_EQ(a::model_activation_bytes(m::gpt_gqa_config(8192, 3, 8, 64),
                                      tp2),
            a::model_activation_bytes(mha, tp2));
}

// ---------------------------------------------------------------------------
// Module accounting: the simulated MoE/GQA layers must register exactly
// the bytes the per-LayerSpec closed form predicts (the same
// cross-validation the dense layers get in test_modules).
// ---------------------------------------------------------------------------

namespace {

m::ModelConfig accounting_config() {
  m::ModelConfig cfg;
  cfg.hidden = 2048;
  cfg.layers = 1;
  cfg.heads = 16;
  cfg.seq = 512;
  cfg.vocab = 32000;
  cfg.micro_batch = 4;
  return cfg;
}

u::Bytes recorded_layer_bytes(const m::ModelConfig& cfg,
                              const w::LayerSpec& group,
                              const p::ParallelConfig& parallel) {
  hw::DeviceAllocator alloc(u::gib(16));
  TestContext ctx(alloc, parallel);
  ctx.install_recording_hooks();
  m::TransformerLayer layer("layer0", cfg.hidden, cfg.heads, group.attention,
                            group.ffn, cfg.flash_attention, cfg.dropout);
  auto x = ctx.make_activation("x", {cfg.seq, cfg.micro_batch, cfg.hidden},
                               ssdtrain::tensor::DType::fp16);
  layer.forward(ctx, x);
  return ctx.recorded_bytes;
}

}  // namespace

TEST(WorkloadAccounting, MoeLayerMatchesClosedForm) {
  auto cfg = accounting_config();
  w::LayerSpec group;
  group.count = 1;
  group.attention.causal = true;
  group.ffn.num_experts = 8;
  group.ffn.top_k = 2;
  for (int tp : {1, 2}) {
    p::ParallelConfig parallel;
    parallel.tensor_parallel = tp;
    EXPECT_EQ(recorded_layer_bytes(cfg, group, parallel),
              a::layer_spec_activation_bytes(cfg, group, parallel))
        << "tp=" << tp;
  }
}

TEST(WorkloadAccounting, GqaLayerMatchesClosedForm) {
  auto cfg = accounting_config();
  w::LayerSpec group;
  group.count = 1;
  group.attention.causal = true;
  group.attention.kv_heads = 4;  // 16 query heads -> 4 kv heads
  for (int tp : {1, 2}) {
    p::ParallelConfig parallel;
    parallel.tensor_parallel = tp;
    EXPECT_EQ(recorded_layer_bytes(cfg, group, parallel),
              a::layer_spec_activation_bytes(cfg, group, parallel))
        << "tp=" << tp;
  }
}

// ---------------------------------------------------------------------------
// The per-layer byte profile the planner consumes
// ---------------------------------------------------------------------------

TEST(WorkloadProfile, ProfileSumsToModelBytesAndExposesHeterogeneity) {
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  const auto t5 = m::t5_config(8192, 5, 16);  // 3 encoders + 2 decoders
  const a::ActivationProfile profile = a::activation_profile(t5, tp2);
  ASSERT_EQ(profile.per_layer.size(), 5u);
  EXPECT_EQ(profile.total(), a::model_activation_bytes(t5, tp2));
  // Decoder layers (cross-attention) are strictly heavier than encoders.
  EXPECT_GT(profile.per_layer[4], profile.per_layer[0]);
  EXPECT_EQ(profile.per_layer[0], profile.per_layer[1]);
  EXPECT_GT(profile.shared_memory, 0);
  EXPECT_GT(profile.kept_last, 0);
  EXPECT_EQ(profile.offloadable(), profile.total() - profile.kept_last);
}

TEST(WorkloadProfile, PlanCarriesThePerLayerProfile) {
  core::PlannerInputs in;
  in.model = m::gpt_moe_config(8192, 3, 8, 8, 2);
  in.parallel.tensor_parallel = 2;
  in.gpu = hw::catalog::table2_evaluation_node().gpu;
  in.target_write_bandwidth = 1.0e10;
  const core::OffloadPlan plan = core::plan_offload(in);
  ASSERT_EQ(plan.per_layer_bytes.size(), 3u);
  EXPECT_GT(plan.kept_last_layer_bytes, 0);
  // The MoE keep-last carve-out exceeds the dense one (routed stream).
  core::PlannerInputs dense = in;
  dense.model = m::gpt_config(8192, 3, 8);
  const core::OffloadPlan dense_plan = core::plan_offload(dense);
  EXPECT_GT(plan.kept_last_layer_bytes, dense_plan.kept_last_layer_bytes);
  EXPECT_GT(plan.per_layer_bytes[0], dense_plan.per_layer_bytes[0]);
}

TEST(WorkloadPerf, MoeAndGqaStepEstimatesBehave) {
  p::ParallelConfig tp2;
  tp2.tensor_parallel = 2;
  hw::Gpu gpu(hw::catalog::a100_pcie_40gb());
  const auto dense = a::estimate_step(m::gpt_config(8192, 3, 8), tp2, gpu,
                                      a::Fabrics{});
  const auto moe = a::estimate_step(m::gpt_moe_config(8192, 3, 8, 8, 2),
                                    tp2, gpu, a::Fabrics{});
  const auto gqa = a::estimate_step(m::gpt_gqa_config(8192, 3, 8), tp2, gpu,
                                    a::Fabrics{});
  // Routed top_k=2 FFN roughly doubles the FFN GEMMs: step grows.
  EXPECT_GT(moe.step, dense.step * 1.2);
  // GQA trims the KV projection GEMM: never slower than MHA.
  EXPECT_LE(gqa.step, dense.step);
  EXPECT_GT(gqa.step, dense.step * 0.8);
}
