/// \file sweep_merge.cpp
/// Reassembles shard CSVs into the canonical single-process sweep file.
///
///   sweep_merge [--expect N] OUT SHARD0.csv SHARD1.csv ... SHARDN-1.csv
///
/// Shard i of N (a bench run with --shard i/N) holds positions j of the
/// filtered grid with j mod N == i, in grid order. The inverse is a
/// round-robin interleave (orchestrate::merge_shards): round k emits row k
/// of shard 0, then row k of shard 1, ..., skipping shards that ran out.
/// The merged file is byte-identical to the CSV a single un-sharded
/// process writes.
///
/// Every input must be a *clean* shard file: identical header lines, every
/// row '\n'-terminated with the header's cell count. Instead of stopping
/// at the first bad input, every shard is inspected and the diagnostic
/// lists ALL missing/torn shard indexes — a supervisor acting on the
/// report needs the full list — and nothing is written while any shard is
/// unusable (merging around a hole would silently reorder rows).
/// --expect N additionally asserts the shard count, catching a forgotten
/// shard file before its absence scrambles the interleave.
///
/// Exit codes: 0 merged, 1 unusable/missing shards, 2 usage error.

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "ssdtrain/orchestrate/merge.hpp"

namespace orc = ssdtrain::orchestrate;

int main(int argc, char** argv) {
  long expect = -1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--expect") {
      if (i + 1 >= argc) {
        std::cerr << "sweep_merge: --expect requires a shard count\n";
        return 2;
      }
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      expect = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || expect < 1) {
        std::cerr << "sweep_merge: --expect expects a positive integer, "
                     "got '"
                  << text << "'\n";
        return 2;
      }
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() < 2) {
    std::cerr << "usage: sweep_merge [--expect N] OUT SHARD0.csv "
                 "[SHARD1.csv ...]\n"
              << "Interleaves shard CSVs (written with --shard i/N, in\n"
              << "argument order = shard order) back into the canonical\n"
              << "single-process row order. --expect N exits nonzero when\n"
              << "the number of shard files is not N.\n";
    return 2;
  }
  const std::string out_path = paths.front();
  const std::vector<std::string> shards(paths.begin() + 1, paths.end());
  if (expect >= 0 && static_cast<long>(shards.size()) != expect) {
    std::cerr << "sweep_merge: expected " << expect << " shard files, got "
              << shards.size()
              << " — refusing to merge an incomplete shard set\n";
    return 1;
  }
  const orc::MergeReport report = orc::merge_shards(shards, out_path);
  if (!report.ok()) {
    std::cerr << "sweep_merge: cannot merge:\n"
              << orc::describe(report) << "\n";
    return 1;
  }
  std::cout << "sweep_merge: " << report.rows << " rows from "
            << shards.size() << " shards -> " << out_path << "\n";
  return 0;
}
