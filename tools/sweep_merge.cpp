/// \file sweep_merge.cpp
/// Reassembles shard CSVs into the canonical single-process sweep file.
///
///   sweep_merge OUT SHARD0.csv SHARD1.csv ... SHARDN-1.csv
///
/// Shard i of N (a bench run with --shard i/N) holds positions j of the
/// filtered grid with j mod N == i, in grid order. The inverse is a
/// round-robin interleave: round k emits row k of shard 0, then row k of
/// shard 1, ..., skipping shards that ran out (the tail rounds when the
/// grid size is not a multiple of N). The merged file is byte-identical to
/// the CSV a single un-sharded process writes.
///
/// Every input must be a *clean* shard file: identical header lines, every
/// row '\n'-terminated with the header's cell count. A truncated shard (its
/// process was killed mid-write) is an error naming the file — re-run that
/// shard to completion (its --csv resume skips the finished points) before
/// merging; merging a torn slice would silently drop the interruption.

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ssdtrain/sweep/resume.hpp"

namespace {

struct ShardFile {
  std::string path;
  std::string header;             ///< first line, without the newline
  std::vector<std::string> rows;  ///< data lines, without the newlines
};

[[nodiscard]] ShardFile read_shard(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("sweep_merge: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  if (content.empty()) {
    throw std::runtime_error("sweep_merge: '" + path + "' is empty");
  }
  if (content.back() != '\n') {
    throw std::runtime_error(
        "sweep_merge: '" + path +
        "' does not end in a newline — the shard was interrupted mid-write; "
        "re-run it to completion (resume skips finished points) before "
        "merging");
  }
  ShardFile shard;
  shard.path = path;
  std::size_t start = 0;
  for (std::size_t nl = content.find('\n', start); nl != std::string::npos;
       nl = content.find('\n', start)) {
    std::string line = content.substr(start, nl - start);
    if (shard.header.empty() && shard.rows.empty() && start == 0) {
      shard.header = std::move(line);
    } else {
      shard.rows.push_back(std::move(line));
    }
    start = nl + 1;
  }
  if (shard.header.empty()) {
    throw std::runtime_error("sweep_merge: '" + path + "' has no header");
  }
  const std::size_t columns =
      ssdtrain::sweep::split_csv_line(shard.header).size();
  for (std::size_t i = 0; i < shard.rows.size(); ++i) {
    const std::size_t cells =
        ssdtrain::sweep::split_csv_line(shard.rows[i]).size();
    if (cells != columns) {
      throw std::runtime_error(
          "sweep_merge: '" + path + "' row " + std::to_string(i + 1) +
          " has " + std::to_string(cells) + " cells, header has " +
          std::to_string(columns) +
          " — torn shard file; re-run the shard before merging");
    }
  }
  return shard;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: sweep_merge OUT SHARD0.csv [SHARD1.csv ...]\n"
              << "Interleaves shard CSVs (written with --shard i/N, in\n"
              << "argument order = shard order) back into the canonical\n"
              << "single-process row order.\n";
    return 2;
  }
  try {
    std::vector<ShardFile> shards;
    shards.reserve(static_cast<std::size_t>(argc - 2));
    for (int i = 2; i < argc; ++i) shards.push_back(read_shard(argv[i]));
    for (const ShardFile& shard : shards) {
      if (shard.header != shards.front().header) {
        throw std::runtime_error(
            "sweep_merge: '" + shard.path + "' header differs from '" +
            shards.front().path + "' — shards of different sweeps?");
      }
    }

    const std::string out_path = argv[1];
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw std::runtime_error("sweep_merge: cannot write '" + out_path +
                               "'");
    }
    out << shards.front().header << '\n';
    std::size_t emitted = 0;
    for (std::size_t round = 0;; ++round) {
      bool any = false;
      for (const ShardFile& shard : shards) {
        if (round >= shard.rows.size()) continue;
        out << shard.rows[round] << '\n';
        ++emitted;
        any = true;
      }
      if (!any) break;
    }
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("sweep_merge: write to '" + out_path +
                               "' failed");
    }
    std::cout << "sweep_merge: " << emitted << " rows from " << shards.size()
              << " shards -> " << out_path << "\n";
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
