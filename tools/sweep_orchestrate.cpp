/// \file sweep_orchestrate.cpp
/// Fault-tolerant sweep driver: partitions a sweep across N worker
/// processes (--shard I/N), babysits them — heartbeats via shard-CSV row
/// counts, dead-worker detection via waitpid, hung-worker detection via a
/// stall timeout, SIGKILL + exponential-backoff relaunch with a cap — and
/// reassembles a verified merged CSV that is byte-identical to the
/// single-process run. Relaunched workers resume from their (tail-
/// repaired) CSVs, so completed points never re-run; shards that exhaust
/// their relaunch budget degrade into an explicit failed-shards report
/// instead of poisoning the merge.
///
///   sweep_orchestrate --shard-count N --out merged.csv
///       [--workdir DIR] [--stall-timeout S] [--poll-interval S]
///       [--max-relaunch K] [--backoff S] [--backoff-max S]
///       [--chaos "kill:rate=0.3,stall:rate=0.1"] [--chaos-seed N]
///       [--launcher-template 'ssh {host} {cmd}'] [--hosts h1,h2]
///       -- WORKER_CMD [WORKER_ARGS...]
///
/// Everything after `--` is the worker command; the driver appends
/// `--csv <workdir>/shard-I.csv --shard I/N` (and a --chaos-exec spec when
/// seeded chaos draws one) per launch. Workers must be sweep::cli benches
/// wired for resumable CSVs (the chaos acceptance property additionally
/// needs sweep::CsvProgress streaming commits — e.g. bench_moe_offload).
///
/// Exit codes: 0 merged and verified, 1 shards failed or the merge was
/// refused, 2 usage error.

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ssdtrain/orchestrate/chaos.hpp"
#include "ssdtrain/orchestrate/launcher.hpp"
#include "ssdtrain/orchestrate/supervisor.hpp"
#include "ssdtrain/util/check.hpp"

namespace orc = ssdtrain::orchestrate;

namespace {

void usage(std::ostream& out) {
  out << "usage: sweep_orchestrate --shard-count N --out merged.csv\n"
         "         [--workdir DIR]          (default: <out>.shards)\n"
         "         [--stall-timeout S]      (default 60; no new CSV row for "
         "S seconds => hung)\n"
         "         [--poll-interval S]      (default 0.2)\n"
         "         [--max-relaunch K]       (default 5 extra launches per "
         "shard)\n"
         "         [--backoff S]            (default 0.5; doubles per "
         "relaunch)\n"
         "         [--backoff-max S]        (default 8)\n"
         "         [--chaos SPEC]           (seeded worker kills/stalls, "
         "e.g. kill:rate=0.3,stall:rate=0.1)\n"
         "         [--chaos-seed N]         (default 0)\n"
         "         [--launcher-template T]  (run workers through a shell "
         "template, e.g. 'ssh {host} {cmd}')\n"
         "         [--hosts h1,h2]          (round-robin {host} values)\n"
         "         -- WORKER_CMD [ARGS...]\n";
}

double parse_seconds(std::string_view flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double s = std::strtod(text, &end);
  ssdtrain::util::expects(end != text && *end == '\0' && errno != ERANGE &&
                              s > 0.0,
                          std::string(flag) +
                              " expects a positive number of seconds, got '" +
                              std::string(text) + "'");
  return s;
}

long parse_int(std::string_view flag, const char* text, long lo, long hi) {
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(text, &end, 10);
  ssdtrain::util::expects(end != text && *end == '\0' && errno != ERANGE &&
                              n >= lo && n <= hi,
                          std::string(flag) + " expects an integer in [" +
                              std::to_string(lo) + ", " + std::to_string(hi) +
                              "], got '" + std::string(text) + "'");
  return n;
}

std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) comma = text.size();
    if (comma > start) out.emplace_back(text.substr(start, comma - start));
    if (comma == text.size()) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  orc::SupervisorConfig config;
  std::string launcher_template;
  std::vector<std::string> hosts;
  config.shard_count = 0;  // required

  int i = 1;
  try {
    for (; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto value = [&]() -> const char* {
        ssdtrain::util::expects(i + 1 < argc,
                                std::string(arg) + " requires a value");
        return argv[++i];
      };
      if (arg == "--") {
        ++i;
        break;
      } else if (arg == "--shard-count") {
        config.shard_count = static_cast<int>(parse_int(arg, value(), 1, 4096));
      } else if (arg == "--out") {
        config.out_csv = value();
      } else if (arg == "--workdir") {
        config.workdir = value();
      } else if (arg == "--stall-timeout") {
        config.stall_timeout = parse_seconds(arg, value());
      } else if (arg == "--poll-interval") {
        config.poll_interval = parse_seconds(arg, value());
      } else if (arg == "--max-relaunch") {
        config.max_relaunch = static_cast<int>(parse_int(arg, value(), 0, 1000));
      } else if (arg == "--backoff") {
        config.backoff_initial = parse_seconds(arg, value());
      } else if (arg == "--backoff-max") {
        config.backoff_max = parse_seconds(arg, value());
      } else if (arg == "--chaos") {
        config.chaos = orc::parse_chaos(value());
      } else if (arg == "--chaos-seed") {
        config.chaos_seed = static_cast<std::uint64_t>(
            parse_int(arg, value(), 0, std::numeric_limits<long>::max()));
      } else if (arg == "--launcher-template") {
        launcher_template = value();
      } else if (arg == "--hosts") {
        hosts = split_list(value());
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else {
        ssdtrain::util::expects(
            false, "unknown flag: " + std::string(arg) +
                       " (worker arguments go after '--')");
      }
    }
    for (; i < argc; ++i) config.worker_command.emplace_back(argv[i]);
    ssdtrain::util::expects(config.shard_count >= 1,
                            "--shard-count is required");
    ssdtrain::util::expects(!config.out_csv.empty(), "--out is required");
    ssdtrain::util::expects(!config.worker_command.empty(),
                            "worker command after '--' is required");
    if (config.workdir.empty()) config.workdir = config.out_csv + ".shards";

    orc::LocalLauncher local;
    std::unique_ptr<orc::CommandTemplateLauncher> templated;
    if (!launcher_template.empty()) {
      templated = std::make_unique<orc::CommandTemplateLauncher>(
          launcher_template, hosts);
      config.launcher = templated.get();
    } else {
      ssdtrain::util::expects(hosts.empty(),
                              "--hosts needs --launcher-template");
      config.launcher = &local;
    }

    orc::Supervisor supervisor(std::move(config));
    const orc::SupervisorReport report = supervisor.run();
    if (!report.ok) {
      std::cerr << "sweep_orchestrate: " << report.error << "\n";
      return 1;
    }
    int relaunches = 0, stalls = 0, repairs = 0;
    for (const orc::ShardReport& s : report.shards) {
      relaunches += s.launches - 1;
      stalls += s.stalls;
      repairs += s.tail_repairs;
    }
    std::cout << "sweep_orchestrate: " << report.merged_rows << " rows from "
              << report.shards.size() << " shards -> ok";
    if (relaunches > 0) {
      std::cout << " (" << relaunches << " relaunches, " << stalls
                << " stall kills, " << repairs << " tail repairs)";
    }
    std::cout << "\n";
  } catch (const std::exception& e) {
    std::cerr << "sweep_orchestrate: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }
  return 0;
}
